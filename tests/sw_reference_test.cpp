#include <gtest/gtest.h>

#include "base/error.hpp"
#include "sw/alignment.hpp"
#include "sw/reference.hpp"
#include "sw/scoring.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Sequence;
using sw::ScoreScheme;

const ScoreScheme kDefault{};  // match 1, mismatch -3, open 3, extend 2

// ---------------------------------------------------------------------------
// ScoreScheme

TEST(ScoreSchemeTest, GapFirst) {
  EXPECT_EQ(kDefault.gap_first(), 5);
}

TEST(ScoreSchemeTest, Substitution) {
  EXPECT_EQ(kDefault.substitution(seq::Nt::A, seq::Nt::A), 1);
  EXPECT_EQ(kDefault.substitution(seq::Nt::A, seq::Nt::C), -3);
}

TEST(ScoreSchemeTest, ValidateRejectsBadSchemes) {
  EXPECT_THROW((ScoreScheme{0, -1, 1, 1}.validate()), InvalidArgument);
  EXPECT_THROW((ScoreScheme{1, 1, 1, 1}.validate()), InvalidArgument);
  EXPECT_THROW((ScoreScheme{1, -1, -1, 1}.validate()), InvalidArgument);
  EXPECT_THROW((ScoreScheme{1, -1, 1, 0}.validate()), InvalidArgument);
}

TEST(ScoreSchemeTest, ImprovesTieBreaking) {
  const sw::ScoreResult a{10, {2, 5}};
  const sw::ScoreResult b{10, {3, 1}};
  const sw::ScoreResult c{10, {2, 7}};
  const sw::ScoreResult d{11, {9, 9}};
  EXPECT_FALSE(sw::improves(b, a));  // larger row loses the tie
  EXPECT_TRUE(sw::improves(a, b));
  EXPECT_FALSE(sw::improves(c, a));  // larger col loses the tie
  EXPECT_TRUE(sw::improves(d, a));   // higher score always wins
}

// ---------------------------------------------------------------------------
// reference_score on hand-checkable inputs

TEST(ReferenceScoreTest, IdenticalSequences) {
  const Sequence s("s", "ACGTACGTAC");
  const auto result = reference_score(kDefault, s, s);
  EXPECT_EQ(result.score, 10);  // all matches
  EXPECT_EQ(result.end.row, 9);
  EXPECT_EQ(result.end.col, 9);
}

TEST(ReferenceScoreTest, NoSimilarity) {
  // One isolated match is the best any single-char alignment achieves.
  const Sequence a("a", "AAAA");
  const Sequence b("b", "TTTT");
  const auto result = reference_score(kDefault, a, b);
  EXPECT_EQ(result.score, 0);
  EXPECT_EQ(result.end, (sw::CellPos{-1, -1}));
}

TEST(ReferenceScoreTest, SingleMatch) {
  const Sequence a("a", "AAGAA");
  const Sequence b("b", "TTGTT");
  const auto result = reference_score(kDefault, a, b);
  EXPECT_EQ(result.score, 1);
  EXPECT_EQ(result.end.row, 2);
  EXPECT_EQ(result.end.col, 2);
}

TEST(ReferenceScoreTest, SubstringMatch) {
  const Sequence a("a", "TTTTACGTACGTTTTT");
  const Sequence b("b", "ACGTACG");
  const auto result = reference_score(kDefault, a, b);
  EXPECT_EQ(result.score, 7);
}

TEST(ReferenceScoreTest, GapCosts) {
  // ACGT vs ACT: best local alignment "AC" (score 2)? Or ACGT/AC-T with
  // one gap: 3 matches - (3+2) = -2 < 2... but match=2 scheme changes it.
  const ScoreScheme cheap{2, -1, 1, 1};
  const Sequence a("a", "ACGT");
  const Sequence b("b", "ACT");
  // ACGT vs AC-T: 3 matches * 2 - (1+1) = 4.
  const auto result = reference_score(cheap, a, b);
  EXPECT_EQ(result.score, 4);
}

TEST(ReferenceScoreTest, AffineGapPreferredOverTwoOpens) {
  // One gap of length 2 must beat two gaps of length 1 when open > 0.
  const ScoreScheme scheme{3, -2, 4, 1};
  // Query has 2 extra bases in one run.
  const Sequence a("a", "AAAACCGGGG");
  const Sequence b("b", "AAAAGGGG");
  // Alignment: AAAA CC GGGG vs AAAA -- GGGG: 8*3 - (4+2*1) = 18.
  const auto result = reference_score(scheme, a, b);
  EXPECT_EQ(result.score, 18);
}

TEST(ReferenceScoreTest, TieBreaksToFirstCell) {
  // Two identical disjoint matches: report the first in row-major order.
  const Sequence a("a", "ACAC");
  const Sequence b("b", "AC");
  const auto result = reference_score(kDefault, a, b);
  EXPECT_EQ(result.score, 2);
  EXPECT_EQ(result.end.row, 1);
  EXPECT_EQ(result.end.col, 1);
}

TEST(ReferenceScoreTest, EmptySequences) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  EXPECT_EQ(reference_score(kDefault, empty, s).score, 0);
  EXPECT_EQ(reference_score(kDefault, s, empty).score, 0);
}

TEST(ReferenceScoreTest, SizeGuard) {
  const Sequence a = testutil::random_sequence(3000, 1);
  const Sequence b = testutil::random_sequence(3000, 2);
  EXPECT_THROW((void)reference_score(kDefault, a, b, /*max_cells=*/1'000'000),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// reference_local_alignment (traceback)

TEST(ReferenceAlignTest, PerfectMatchOps) {
  const Sequence s("s", "ACGTAC");
  const auto alignment = reference_local_alignment(kDefault, s, s);
  EXPECT_EQ(alignment.score, 6);
  EXPECT_EQ(alignment.ops, "======");
  EXPECT_EQ(alignment.query_begin, 0);
  EXPECT_EQ(alignment.query_end, 6);
  sw::validate_alignment(kDefault, s, s, alignment);
}

TEST(ReferenceAlignTest, AlignmentWithMismatch) {
  const ScoreScheme scheme{2, -1, 2, 1};
  const Sequence a("a", "ACGTACGT");
  const Sequence b("b", "ACGAACGT");
  const auto alignment = reference_local_alignment(scheme, a, b);
  EXPECT_EQ(alignment.score, 7 * 2 - 1);
  sw::validate_alignment(scheme, a, b, alignment);
  EXPECT_NE(alignment.ops.find('X'), std::string::npos);
}

TEST(ReferenceAlignTest, AlignmentWithGap) {
  const ScoreScheme scheme{2, -3, 1, 1};
  const Sequence a("a", "AACCGGTT");
  const Sequence b("b", "AACCGGAGTT");  // 'AG' inserted
  const auto alignment = reference_local_alignment(scheme, a, b);
  sw::validate_alignment(scheme, a, b, alignment);
  EXPECT_EQ(alignment.score, 8 * 2 - (1 + 2 * 1));
  EXPECT_NE(alignment.ops.find('I'), std::string::npos);
}

TEST(ReferenceAlignTest, EmptyWhenNoPositiveScore) {
  const Sequence a("a", "AAAA");
  const Sequence b("b", "TTTT");
  const auto alignment = reference_local_alignment(kDefault, a, b);
  EXPECT_EQ(alignment.score, 0);
  EXPECT_TRUE(alignment.ops.empty());
}

// Property: traceback alignment always validates and matches the score
// reported by reference_score, across schemes and random related pairs.
class ReferenceAlignProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReferenceAlignProperty, TracebackConsistent) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  auto [a, b] = testutil::related_pair(120, static_cast<std::uint64_t>(seed));
  const auto score = reference_score(scheme, a, b);
  const auto alignment = reference_local_alignment(scheme, a, b);
  EXPECT_EQ(alignment.score, score.score);
  if (score.score > 0) {
    EXPECT_EQ(alignment.query_end - 1, score.end.row);
    EXPECT_EQ(alignment.subject_end - 1, score.end.col);
    sw::validate_alignment(scheme, a, b, alignment);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, ReferenceAlignProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 12)));

// ---------------------------------------------------------------------------
// score_of_ops / validate_alignment

TEST(AlignmentOpsTest, ScoreOfOps) {
  const ScoreScheme scheme{1, -3, 3, 2};
  EXPECT_EQ(sw::score_of_ops(scheme, "===="), 4);
  EXPECT_EQ(sw::score_of_ops(scheme, "==X="), 3 - 3);
  EXPECT_EQ(sw::score_of_ops(scheme, "==I=="), 4 - 5);
  EXPECT_EQ(sw::score_of_ops(scheme, "==II=="), 4 - 7);
  // Adjacent I then D runs both open.
  EXPECT_EQ(sw::score_of_ops(scheme, "=ID="), 2 - 5 - 5);
  EXPECT_EQ(sw::score_of_ops(scheme, ""), 0);
}

TEST(AlignmentOpsTest, UnknownOpThrows) {
  EXPECT_THROW((void)sw::score_of_ops(kDefault, "=?="), InvalidArgument);
}

TEST(AlignmentOpsTest, ValidateCatchesWrongBases) {
  const Sequence a("a", "AC");
  const Sequence b("b", "AG");
  sw::Alignment alignment;
  alignment.query_end = 2;
  alignment.subject_end = 2;
  alignment.ops = "==";  // second pair is actually a mismatch
  alignment.score = 2;
  EXPECT_THROW(sw::validate_alignment(kDefault, a, b, alignment),
               InternalError);
}

TEST(AlignmentOpsTest, ValidateCatchesWrongSpan) {
  const Sequence a("a", "ACG");
  const Sequence b("b", "ACG");
  sw::Alignment alignment;
  alignment.query_end = 3;
  alignment.subject_end = 3;
  alignment.ops = "==";  // consumes only 2
  alignment.score = 2;
  EXPECT_THROW(sw::validate_alignment(kDefault, a, b, alignment),
               InternalError);
}

TEST(AlignmentOpsTest, IdentityFraction) {
  sw::Alignment alignment;
  alignment.ops = "==X=I";
  EXPECT_DOUBLE_EQ(alignment.identity(), 3.0 / 5.0);
}

TEST(AlignmentOpsTest, RenderShowsGapsAndBars) {
  const ScoreScheme scheme{2, -3, 1, 1};
  const Sequence a("a", "AACCGGTT");
  const Sequence b("b", "AACCGGAGTT");
  const auto alignment = reference_local_alignment(scheme, a, b);
  const std::string text = sw::render_alignment(a, b, alignment, 40);
  EXPECT_NE(text.find('|'), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);
}

// ---------------------------------------------------------------------------
// reference_global_score sanity

TEST(ReferenceGlobalTest, IdenticalSequences) {
  const Sequence s("s", "ACGTACGT");
  EXPECT_EQ(reference_global_score(kDefault, s, s), 8);
}

TEST(ReferenceGlobalTest, EmptyVsNonEmptyPaysGap) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  EXPECT_EQ(reference_global_score(kDefault, empty, s),
            -(3 + 4 * 2));
  EXPECT_EQ(reference_global_score(kDefault, s, empty),
            -(3 + 4 * 2));
}

TEST(ReferenceGlobalTest, SingleSubstitution) {
  const Sequence a("a", "ACGT");
  const Sequence b("b", "AGGT");
  EXPECT_EQ(reference_global_score(kDefault, a, b), 3 - 3);
}

}  // namespace
}  // namespace mgpusw
