#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "base/flags.hpp"
#include "base/format.hpp"
#include "base/math.hpp"
#include "base/queue.hpp"
#include "base/rng.hpp"
#include "base/thread_pool.hpp"
#include "base/time.hpp"

namespace mgpusw {
namespace {

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSameSeed) {
  base::Rng a(123);
  base::Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  base::Rng a(1);
  base::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  base::Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowZeroReturnsZero) {
  base::Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  base::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextRangeInclusive) {
  base::Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t value = rng.next_range(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BernoulliExtremes) {
  base::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, ReseedResets) {
  base::Rng rng(42);
  const std::uint64_t first = rng.next_u64();
  (void)rng.next_u64();
  rng.reseed(42);
  EXPECT_EQ(rng.next_u64(), first);
}

// ---------------------------------------------------------------------------
// math

TEST(MathTest, DivCeil) {
  EXPECT_EQ(base::div_ceil(0, 4), 0);
  EXPECT_EQ(base::div_ceil(1, 4), 1);
  EXPECT_EQ(base::div_ceil(4, 4), 1);
  EXPECT_EQ(base::div_ceil(5, 4), 2);
  EXPECT_EQ(base::div_ceil(8, 4), 2);
}

TEST(MathTest, RoundUpDown) {
  EXPECT_EQ(base::round_up(5, 4), 8);
  EXPECT_EQ(base::round_up(8, 4), 8);
  EXPECT_EQ(base::round_down(5, 4), 4);
  EXPECT_EQ(base::round_down(8, 4), 8);
}

// ---------------------------------------------------------------------------
// time

TEST(TimeTest, CellsToNs) {
  // 1 GCUPS = 1 cell per nanosecond.
  EXPECT_EQ(base::cells_to_ns(1000, 1.0), 1000);
  EXPECT_EQ(base::cells_to_ns(1000, 2.0), 500);
  EXPECT_EQ(base::cells_to_ns(0, 1.0), 0);
  // Non-empty work never takes zero time.
  EXPECT_GE(base::cells_to_ns(1, 1000.0), 1);
}

TEST(TimeTest, BytesToNs) {
  EXPECT_EQ(base::bytes_to_ns(3'000'000'000LL, 3.0), 1'000'000'000LL);
  EXPECT_GE(base::bytes_to_ns(1, 100.0), 1);
}

TEST(TimeTest, WallTimerAdvances) {
  base::WallTimer timer;
  volatile std::int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(timer.elapsed_ns(), 0);
}

// ---------------------------------------------------------------------------
// format

TEST(FormatTest, WithThousands) {
  EXPECT_EQ(base::with_thousands(0), "0");
  EXPECT_EQ(base::with_thousands(999), "999");
  EXPECT_EQ(base::with_thousands(1000), "1,000");
  EXPECT_EQ(base::with_thousands(1234567), "1,234,567");
  EXPECT_EQ(base::with_thousands(-1234567), "-1,234,567");
}

TEST(FormatTest, HumanBytes) {
  EXPECT_EQ(base::human_bytes(512), "512 B");
  EXPECT_EQ(base::human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(base::human_bytes(1LL << 20), "1.0 MiB");
}

TEST(FormatTest, HumanBp) {
  EXPECT_EQ(base::human_bp(500), "500 bp");
  EXPECT_EQ(base::human_bp(46'944'323), "46.94 Mbp");
}

TEST(FormatTest, HumanDuration) {
  EXPECT_EQ(base::human_duration(0.0001), "100.0 us");
  EXPECT_EQ(base::human_duration(0.085), "85.0 ms");
  EXPECT_EQ(base::human_duration(12.4), "12.40 s");
  EXPECT_EQ(base::human_duration(200.0), "3m20s");
  EXPECT_EQ(base::human_duration(3720.0), "1h2m");
}

TEST(FormatTest, TextTableAlignsColumns) {
  base::TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.str();
  EXPECT_NE(text.find("| name   | value |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22    |"), std::string::npos);
}

TEST(FormatTest, TextTableRejectsBadRow) {
  base::TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// flags

TEST(FlagsTest, ParsesAllTypes) {
  base::FlagSet flags("test");
  flags.add_int("n", 5, "count");
  flags.add_double("rate", 1.5, "rate");
  flags.add_bool("verbose", false, "verbosity");
  flags.add_string("name", "default", "a name");

  const char* argv[] = {"prog", "--n=7", "--rate", "2.25", "--verbose",
                        "--name=abc", "positional"};
  ASSERT_TRUE(flags.parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("n"), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("name"), "abc");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsSurviveParse) {
  base::FlagSet flags("test");
  flags.add_int("n", 5, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("n"), 5);
}

TEST(FlagsTest, UnknownFlagThrows) {
  base::FlagSet flags("test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(argv)), InvalidArgument);
}

TEST(FlagsTest, MalformedIntThrows) {
  base::FlagSet flags("test");
  flags.add_int("n", 5, "count");
  const char* argv[] = {"prog", "--n=abc"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_THROW((void)flags.get_int("n"), InvalidArgument);
}

TEST(FlagsTest, HelpReturnsFalse) {
  base::FlagSet flags("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, ChoiceAcceptsListedValue) {
  base::FlagSet flags("test");
  flags.add_choice("mode", "fast", {"fast", "slow"}, "speed mode");
  const char* argv[] = {"prog", "--mode=slow"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_string("mode"), "slow");
}

TEST(FlagsTest, ChoiceRejectsUnlistedValueAtParseTime) {
  base::FlagSet flags("test");
  flags.add_choice("mode", "fast", {"fast", "slow"}, "speed mode");
  const char* argv[] = {"prog", "--mode=medium"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(argv)), InvalidArgument);
}

TEST(FlagsTest, ChoiceRejectsBadDefault) {
  base::FlagSet flags("test");
  EXPECT_THROW(flags.add_choice("mode", "medium", {"fast", "slow"}, "m"),
               InvalidArgument);
}

TEST(FlagsTest, ChoiceListedInUsage) {
  base::FlagSet flags("test");
  flags.add_choice("mode", "fast", {"fast", "slow"}, "speed mode");
  EXPECT_NE(flags.usage().find("fast|slow"), std::string::npos);
}

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(QueueTest, FifoOrder) {
  base::BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(QueueTest, CloseDrainsThenStops) {
  base::BoundedQueue<int> queue(4);
  queue.push(1);
  queue.close();
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(QueueTest, PushAfterCloseThrows) {
  base::BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_THROW(queue.push(1), Error);
}

TEST(QueueTest, TryPushRespectsCapacity) {
  base::BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(QueueTest, BlockingPushUnblocksOnPop) {
  base::BoundedQueue<int> queue(1);
  queue.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GT(queue.producer_stall_ns(), 0);
}

TEST(QueueTest, ConsumerStallAccounted) {
  base::BoundedQueue<int> queue(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(42);
  });
  EXPECT_EQ(queue.pop(), 42);
  producer.join();
  EXPECT_GT(queue.consumer_stall_ns(), 5'000'000);
}

TEST(QueueTest, ManyProducersManyConsumers) {
  base::BoundedQueue<int> queue(8);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push(p * kPerProducer + i);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto value = queue.pop()) {
        sum += *value;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  queue.close();
  for (auto& thread : consumers) thread.join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(QueueTest, ZeroCapacityRejected) {
  EXPECT_THROW(base::BoundedQueue<int>(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  base::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  base::ThreadPool pool(1);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  base::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  base::ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(ThreadPoolTest, ZeroThreadsRejected) {
  EXPECT_THROW(base::ThreadPool(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// error macros

TEST(ErrorTest, CheckThrowsInternalError) {
  EXPECT_THROW([] { MGPUSW_CHECK(1 == 2); }(), InternalError);
}

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW([] { MGPUSW_REQUIRE(false, "nope"); }(), InvalidArgument);
}

TEST(ErrorTest, MessagesCarryContext) {
  try {
    MGPUSW_REQUIRE(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("value was 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mgpusw
