// End-to-end runs of the paper's actual workload shape at reduced scale:
// all four chromosome pairs, heterogeneous 3-device environment-1
// profiles, verified against the serial oracle — the closest this host
// gets to executing the paper's evaluation for real.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "seq/synth.hpp"
#include "sim/pipeline_sim.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

class PaperPair : public ::testing::TestWithParam<int> {};

TEST_P(PaperPair, ScaledRealRunMatchesOracle) {
  const auto& pair = seq::paper_chromosome_pairs()[
      static_cast<std::size_t>(GetParam())];
  const seq::HomologPair homologs =
      seq::make_homolog_pair(seq::scaled_pair(pair, 16384), 77);

  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> pointers;
  for (const vgpu::DeviceSpec& spec : vgpu::environment1()) {
    devices.push_back(std::make_unique<vgpu::Device>(spec));
    pointers.push_back(devices.back().get());
  }

  core::EngineConfig config;
  config.block_rows = 64;
  config.block_cols = 64;
  core::MultiDeviceEngine engine(config, pointers);
  const auto result = engine.run(homologs.query, homologs.subject);
  EXPECT_EQ(result.best, sw::linear_score(config.scheme, homologs.query,
                                          homologs.subject));
  // Homologs must align strongly: a large fraction of the shorter side.
  EXPECT_GT(result.best.score,
            std::min(homologs.query.size(), homologs.subject.size()) / 3);

  // The split follows the env-1 speed ratios.
  const double total = sim::aggregate_gcups(vgpu::environment1());
  for (std::size_t d = 0; d < 3; ++d) {
    const double share =
        static_cast<double>(result.devices[d].slice.cols) /
        static_cast<double>(homologs.subject.size());
    const double expected =
        vgpu::environment1()[d].sw_gcups / total;
    EXPECT_NEAR(share, expected, 0.06) << "device " << d;
  }
}

TEST_P(PaperPair, ModelModeAtFullScaleHitsAggregate) {
  const auto& pair = seq::paper_chromosome_pairs()[
      static_cast<std::size_t>(GetParam())];
  sim::SimConfig config;
  config.rows = pair.human_length;
  config.cols = pair.chimp_length;
  config.devices = vgpu::environment1();
  const auto result = sim::simulate_pipeline(config);
  const double aggregate = sim::aggregate_gcups(config.devices);
  EXPECT_GT(result.gcups(), aggregate * 0.99);
  EXPECT_LE(result.gcups(), aggregate * 1.001);
  // Paper headline: ~140.36 GCUPS with 3 heterogeneous GPUs.
  EXPECT_NEAR(result.gcups(), 140.36, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PaperPair, ::testing::Range(0, 4));

TEST(SimKnobsTest, DispatchWidthOverrideChangesNarrowSliceCost) {
  sim::SimConfig config;
  config.rows = config.cols = 1 << 16;
  config.block_rows = config.block_cols = 4096;  // 16 block cols total
  config.devices = {vgpu::tesla_m2090(), vgpu::tesla_m2090()};
  config.dispatch_width = 1;  // always saturated
  const double saturated = sim::simulate_pipeline(config).gcups();
  config.dispatch_width = 32;  // 8-col slices can't fill 32
  const double starved = sim::simulate_pipeline(config).gcups();
  EXPECT_GT(saturated, starved * 2.0);
}

TEST(SimKnobsTest, SlowerInterconnectNeverHelps) {
  sim::SimConfig fast;
  fast.rows = fast.cols = 1 << 20;
  fast.block_rows = fast.block_cols = 1024;
  fast.devices = vgpu::environment1();
  sim::SimConfig slow = fast;
  for (auto& spec : slow.devices) {
    spec.pcie_latency_us *= 1000.0;
    spec.pcie_gbytes_per_s /= 100.0;
  }
  EXPECT_LE(sim::simulate_pipeline(slow).gcups(),
            sim::simulate_pipeline(fast).gcups() + 0.01);
}

}  // namespace
}  // namespace mgpusw
