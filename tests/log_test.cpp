#include <gtest/gtest.h>

#include "base/log.hpp"

namespace mgpusw {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(base::log_level()) {}
  ~LogLevelGuard() { base::set_log_level(saved_); }

 private:
  base::LogLevel saved_;
};

TEST(LogTest, LevelRoundTrip) {
  LogLevelGuard guard;
  base::set_log_level(base::LogLevel::kDebug);
  EXPECT_EQ(base::log_level(), base::LogLevel::kDebug);
  base::set_log_level(base::LogLevel::kError);
  EXPECT_EQ(base::log_level(), base::LogLevel::kError);
}

TEST(LogTest, MacroStreamsAndFilters) {
  LogLevelGuard guard;
  base::set_log_level(base::LogLevel::kError);
  // Below the threshold: the stream expression must not be evaluated.
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  MGPUSW_LOG(kDebug) << "value " << count();
  EXPECT_EQ(evaluations, 0);
  // At the threshold: evaluated (and written to stderr).
  MGPUSW_LOG(kError) << "value " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, DirectEmissionDoesNotCrash) {
  LogLevelGuard guard;
  base::set_log_level(base::LogLevel::kDebug);
  base::log_message(base::LogLevel::kInfo, "info line");
  base::log_message(base::LogLevel::kWarn, "warn line");
}

}  // namespace
}  // namespace mgpusw
