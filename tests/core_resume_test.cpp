// Checkpoint/restart tests: stage 1 resumed from a saved (H, F) row must
// complete exactly as if it had never been interrupted.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <unistd.h>

#include "base/error.hpp"
#include "core/engine.hpp"
#include "core/special_rows.hpp"
#include "sw/kernel.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::EngineConfig;
using core::MultiDeviceEngine;
using core::SpecialRowStore;

EngineConfig checkpointing_config(SpecialRowStore* store) {
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.special_row_interval = 2;  // checkpoint every 64 rows
  config.special_rows = store;
  config.checkpoint_f = true;
  return config;
}

/// Best over the matrix prefix of rows [0, last_row] — what an
/// interrupted run would have recorded before dying.
sw::ScoreResult prefix_best(const seq::Sequence& query,
                            const seq::Sequence& subject,
                            std::int64_t last_row) {
  return sw::linear_score(sw::ScoreScheme{},
                          query.subsequence(0, last_row + 1), subject);
}

class ResumeProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ResumeProperty, PrefixPlusResumeEqualsFullRun) {
  const auto [device_count, seed] = GetParam();
  auto [a, b] = testutil::related_pair(
      320 + seed * 16, static_cast<std::uint64_t>(seed) + 130);

  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> pointers;
  for (int d = 0; d < device_count; ++d) {
    devices.push_back(std::make_unique<vgpu::Device>(
        vgpu::toy_device(10.0 + 3.0 * d)));
    pointers.push_back(devices.back().get());
  }

  SpecialRowStore store;
  MultiDeviceEngine engine(checkpointing_config(&store), pointers);
  const auto full = engine.run(a, b);

  const auto checkpoints = store.rows();
  ASSERT_GE(checkpoints.size(), 2u);
  // Resume from every checkpoint except ones at the very end of the
  // matrix (nothing left to compute).
  for (const std::int64_t row : checkpoints) {
    if (row + 1 >= a.size()) continue;
    const auto resumed = engine.resume(a, b, store, row);
    EXPECT_EQ(resumed.matrix_cells, (a.size() - row - 1) * b.size());

    sw::ScoreResult combined = prefix_best(a, b, row);
    if (sw::improves(resumed.best, combined)) combined = resumed.best;
    EXPECT_EQ(combined, full.best)
        << "resume from row " << row << " (seed " << seed << ", "
        << device_count << " devices)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSeeds, ResumeProperty,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Range(0, 3)));

TEST(ResumeTest, BestInResumedRegionIsFound) {
  // Self-comparison: the global best sits at the bottom-right corner,
  // inside every resumed region.
  const seq::Sequence s = testutil::random_sequence(512, 140);
  vgpu::Device device(vgpu::toy_device(10.0));
  SpecialRowStore store;
  MultiDeviceEngine engine(checkpointing_config(&store), {&device});
  const auto full = engine.run(s, s);
  EXPECT_EQ(full.best.score, 512);

  const auto resumed = engine.resume(s, s, store, 255);
  EXPECT_EQ(resumed.best, full.best);  // corner lies after row 255
}

TEST(ResumeTest, WorksWithDiskSpilledCheckpoints) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mgpusw_resume_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    auto [a, b] = testutil::related_pair(320, 141);
    vgpu::Device d0(vgpu::toy_device(10.0));
    vgpu::Device d1(vgpu::toy_device(15.0));
    SpecialRowStore store(dir.string());
    MultiDeviceEngine engine(checkpointing_config(&store), {&d0, &d1});
    const auto full = engine.run(a, b);

    const auto resumed = engine.resume(a, b, store, 63);
    sw::ScoreResult combined = prefix_best(a, b, 63);
    if (sw::improves(resumed.best, combined)) combined = resumed.best;
    EXPECT_EQ(combined, full.best);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ResumeTest, RejectsMisalignedRow) {
  auto [a, b] = testutil::related_pair(320, 142);
  vgpu::Device device(vgpu::toy_device(10.0));
  SpecialRowStore store;
  MultiDeviceEngine engine(checkpointing_config(&store), {&device});
  (void)engine.run(a, b);
  EXPECT_THROW((void)engine.resume(a, b, store, 100), InvalidArgument);
}

TEST(ResumeTest, RejectsCheckpointAtMatrixEnd) {
  const seq::Sequence s = testutil::random_sequence(320, 143);
  vgpu::Device device(vgpu::toy_device(10.0));
  SpecialRowStore store;
  MultiDeviceEngine engine(checkpointing_config(&store), {&device});
  (void)engine.run(s, s);
  EXPECT_THROW((void)engine.resume(s, s, store, 319), InvalidArgument);
}

TEST(ResumeTest, RejectsRowsSavedWithoutF) {
  auto [a, b] = testutil::related_pair(320, 144);
  vgpu::Device device(vgpu::toy_device(10.0));
  SpecialRowStore store;
  EngineConfig config = checkpointing_config(&store);
  config.checkpoint_f = false;  // retrieval-only special rows
  MultiDeviceEngine engine(config, {&device});
  (void)engine.run(a, b);
  EXPECT_THROW((void)engine.resume(a, b, store, 63), InternalError);
}

TEST(ResumeTest, DiagonalScheduleResumesIdentically) {
  auto [a, b] = testutil::related_pair(320, 145);
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(14.0));
  SpecialRowStore store;
  EngineConfig config = checkpointing_config(&store);
  config.schedule = core::Schedule::kDiagonal;
  MultiDeviceEngine engine(config, {&d0, &d1});
  const auto full = engine.run(a, b);

  for (const std::int64_t row : store.rows()) {
    if (row + 1 >= a.size()) continue;
    const auto resumed = engine.resume(a, b, store, row);
    sw::ScoreResult combined = prefix_best(a, b, row);
    if (sw::improves(resumed.best, combined)) combined = resumed.best;
    EXPECT_EQ(combined, full.best) << "diagonal resume from row " << row;
  }
}

// Every registered kernel × both schedules: a resumed run must merge to
// the same best as the uninterrupted run, bit for bit. Covers the
// scalar, SSE4.2 and AVX2 SIMD backends wherever the host can run them.
class ResumeKernelSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, core::Schedule>> {};

TEST_P(ResumeKernelSweep, ResumeMatchesFullRunBitExactly) {
  const auto& [kernel, schedule] = GetParam();
  auto [a, b] = testutil::related_pair(288, 146);
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(17.0));
  SpecialRowStore store;
  EngineConfig config = checkpointing_config(&store);
  config.kernel = kernel;
  config.schedule = schedule;
  MultiDeviceEngine engine(config, {&d0, &d1});
  const auto full = engine.run(a, b);
  EXPECT_EQ(full.best, sw::linear_score(sw::ScoreScheme{}, a, b));

  const auto checkpoints = store.rows();
  ASSERT_GE(checkpoints.size(), 2u);
  for (const std::int64_t row : checkpoints) {
    if (row + 1 >= a.size()) continue;
    const auto resumed = engine.resume(a, b, store, row);
    sw::ScoreResult combined = prefix_best(a, b, row);
    if (sw::improves(resumed.best, combined)) combined = resumed.best;
    EXPECT_EQ(combined, full.best)
        << "kernel " << kernel << ", schedule "
        << (schedule == core::Schedule::kRowMajor ? "row-major"
                                                  : "diagonal")
        << ", resume from row " << row;
  }
}

std::vector<std::string> registered_kernel_names() {
  std::vector<std::string> names;
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    names.push_back(info.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndSchedules, ResumeKernelSweep,
    ::testing::Combine(::testing::ValuesIn(registered_kernel_names()),
                       ::testing::Values(core::Schedule::kRowMajor,
                                         core::Schedule::kDiagonal)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + (std::get<1>(info.param) == core::Schedule::kRowMajor
                         ? "_rowmajor"
                         : "_diagonal");
    });

}  // namespace
}  // namespace mgpusw
