// Shared helpers for the mgpu-sw test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "seq/sequence.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::testutil {

/// Uniform random DNA sequence.
inline seq::Sequence random_sequence(std::int64_t length,
                                     std::uint64_t seed,
                                     const std::string& name = "rand") {
  base::Rng rng(seed);
  std::vector<seq::Nt> bases(static_cast<std::size_t>(length));
  for (auto& base : bases) base = static_cast<seq::Nt>(rng.next_below(4));
  return seq::Sequence(name, bases);
}

/// A pair of related sequences: the second is the first with point
/// mutations and indels, so alignments have realistic structure (long
/// matching runs) instead of the short high-entropy matches random pairs
/// produce.
inline std::pair<seq::Sequence, seq::Sequence> related_pair(
    std::int64_t length, std::uint64_t seed, double divergence = 0.08) {
  base::Rng rng(seed);
  std::vector<seq::Nt> a(static_cast<std::size_t>(length));
  for (auto& base : a) base = static_cast<seq::Nt>(rng.next_below(4));
  std::vector<seq::Nt> b;
  b.reserve(a.size());
  for (const seq::Nt base : a) {
    const double roll = rng.next_double();
    if (roll < divergence * 0.5) {
      // substitution
      b.push_back(static_cast<seq::Nt>(
          (static_cast<std::uint64_t>(base) + 1 + rng.next_below(3)) & 3));
    } else if (roll < divergence * 0.75) {
      // deletion: skip
    } else if (roll < divergence) {
      // insertion + keep
      b.push_back(static_cast<seq::Nt>(rng.next_below(4)));
      b.push_back(base);
    } else {
      b.push_back(base);
    }
  }
  if (b.empty()) b.push_back(seq::Nt::A);
  return {seq::Sequence("A", a), seq::Sequence("B", b)};
}

/// Scoring schemes exercised by the property tests: the CUDAlign default
/// plus variants stressing each parameter.
inline std::vector<sw::ScoreScheme> test_schemes() {
  return {
      sw::ScoreScheme{1, -3, 3, 2},   // CUDAlign default
      sw::ScoreScheme{2, -1, 1, 1},   // cheap gaps
      sw::ScoreScheme{1, -1, 0, 1},   // linear gaps (open = 0)
      sw::ScoreScheme{5, -4, 10, 1},  // expensive open
      sw::ScoreScheme{3, -2, 2, 3},   // extend > open
  };
}

}  // namespace mgpusw::testutil
