#include <gtest/gtest.h>

#include "sw/linear.hpp"
#include "sw/myers_miller.hpp"
#include "sw/reference.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Sequence;
using sw::ScoreScheme;

const ScoreScheme kDefault{};

// ---------------------------------------------------------------------------
// global_align

TEST(GlobalAlignTest, IdenticalSequences) {
  const Sequence s("s", "ACGTACGTACGT");
  const auto alignment = global_align(kDefault, s, s);
  EXPECT_EQ(alignment.ops, std::string(12, '='));
  EXPECT_EQ(alignment.score, 12);
  sw::validate_alignment(kDefault, s, s, alignment);
}

TEST(GlobalAlignTest, EmptyAgainstNonEmpty) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  const auto alignment = global_align(kDefault, empty, s);
  EXPECT_EQ(alignment.ops, "IIII");
  EXPECT_EQ(alignment.score, -(3 + 4 * 2));
  const auto alignment2 = global_align(kDefault, s, empty);
  EXPECT_EQ(alignment2.ops, "DDDD");
}

TEST(GlobalAlignTest, BothEmpty) {
  const Sequence empty;
  const auto alignment = global_align(kDefault, empty, empty);
  EXPECT_TRUE(alignment.ops.empty());
  EXPECT_EQ(alignment.score, 0);
}

TEST(GlobalAlignTest, SingleCharCases) {
  const Sequence a("a", "G");
  const Sequence same("b", "G");
  const Sequence diff("c", "T");
  EXPECT_EQ(global_align(kDefault, a, same).score, 1);
  EXPECT_EQ(global_align(kDefault, a, diff).score, -3);
}

TEST(GlobalAlignTest, DeletionRunStaysAffine) {
  // A 4-base deletion must be charged one open, not four.
  const ScoreScheme scheme{2, -2, 5, 1};
  const Sequence a("a", "AAAATTTTGGGG");
  const Sequence b("b", "AAAAGGGG");
  const auto alignment = global_align(scheme, a, b);
  sw::validate_alignment(scheme, a, b, alignment);
  EXPECT_EQ(alignment.score, 8 * 2 - (5 + 4 * 1));
  EXPECT_EQ(reference_global_score(scheme, a, b), alignment.score);
}

// Property: Myers–Miller (linear space) reproduces the full-matrix global
// score exactly, and its ops always validate — across schemes, random
// pairs, related pairs and skewed shapes. This is the strongest evidence
// that the divide-and-conquer gap-splitting logic is right.
class MmProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MmProperty, RandomPairs) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  const auto a = testutil::random_sequence(
      60 + seed * 9, static_cast<std::uint64_t>(seed) * 5 + 1);
  const auto b = testutil::random_sequence(
      50 + seed * 11, static_cast<std::uint64_t>(seed) * 5 + 2);
  const auto alignment = global_align(scheme, a, b);
  sw::validate_alignment(scheme, a, b, alignment);
  EXPECT_EQ(alignment.score, reference_global_score(scheme, a, b));
}

TEST_P(MmProperty, RelatedPairs) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  auto [a, b] = testutil::related_pair(
      140, static_cast<std::uint64_t>(seed) + 77);
  const auto alignment = global_align(scheme, a, b);
  sw::validate_alignment(scheme, a, b, alignment);
  EXPECT_EQ(alignment.score, reference_global_score(scheme, a, b));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, MmProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 10)));

TEST(GlobalAlignTest, SkewedShapes) {
  for (const ScoreScheme& scheme : testutil::test_schemes()) {
    const auto a = testutil::random_sequence(3, 1);
    const auto b = testutil::random_sequence(90, 2);
    const auto alignment = global_align(scheme, a, b);
    sw::validate_alignment(scheme, a, b, alignment);
    EXPECT_EQ(alignment.score, reference_global_score(scheme, a, b));
    const auto alignment2 = global_align(scheme, b, a);
    sw::validate_alignment(scheme, b, a, alignment2);
    EXPECT_EQ(alignment2.score, reference_global_score(scheme, b, a));
  }
}

// ---------------------------------------------------------------------------
// local_align (three-stage pipeline)

TEST(LocalAlignTest, RecoversEmbeddedMatch) {
  const Sequence a("a", "TTTTTACGTACGTT");
  const Sequence b("b", "GGGACGTACGGG");
  const auto alignment = local_align(kDefault, a, b);
  EXPECT_EQ(alignment.score, 7);
  EXPECT_EQ(alignment.query_begin, 5);
  EXPECT_EQ(alignment.subject_begin, 3);
  sw::validate_alignment(kDefault, a, b, alignment);
}

TEST(LocalAlignTest, EmptyWhenNoAlignment) {
  const Sequence a("a", "AAAA");
  const Sequence b("b", "TTTT");
  const auto alignment = local_align(kDefault, a, b);
  EXPECT_EQ(alignment.score, 0);
  EXPECT_TRUE(alignment.ops.empty());
}

// Property: the pipeline's alignment scores exactly the stage-1 optimum
// and validates structurally, matching the full-matrix traceback score.
class LocalAlignProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LocalAlignProperty, MatchesReference) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  auto [a, b] = testutil::related_pair(
      130, static_cast<std::uint64_t>(seed) + 13);
  const auto expected = reference_score(scheme, a, b);
  const auto alignment = local_align(scheme, a, b);
  EXPECT_EQ(alignment.score, expected.score);
  if (expected.score > 0) {
    sw::validate_alignment(scheme, a, b, alignment);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, LocalAlignProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 8)));

}  // namespace
}  // namespace mgpusw
