#include <gtest/gtest.h>

#include <numeric>

#include "base/error.hpp"
#include "seq/stats.hpp"
#include "seq/synth.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Sequence;

TEST(SeqStatsTest, GcContent) {
  EXPECT_DOUBLE_EQ(seq::gc_content(Sequence("s", "GGCC")), 1.0);
  EXPECT_DOUBLE_EQ(seq::gc_content(Sequence("s", "AATT")), 0.0);
  EXPECT_DOUBLE_EQ(seq::gc_content(Sequence("s", "ACGT")), 0.5);
  EXPECT_DOUBLE_EQ(seq::gc_content(Sequence()), 0.0);
}

TEST(SeqStatsTest, GcWindows) {
  const Sequence s("s", "GGGGAAAATT");
  const auto windows = seq::gc_windows(s, 4);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[0], 1.0);
  EXPECT_DOUBLE_EQ(windows[1], 0.0);
  EXPECT_DOUBLE_EQ(windows[2], 0.0);  // partial final window "TT"
  EXPECT_THROW((void)seq::gc_windows(s, 0), InvalidArgument);
}

TEST(SeqStatsTest, KmerSpectrumCountsAllKmers) {
  const Sequence s("s", "ACGTACGT");
  const auto spectrum = seq::kmer_spectrum(s, 2);
  ASSERT_EQ(spectrum.size(), 16u);
  const std::int64_t total =
      std::accumulate(spectrum.begin(), spectrum.end(), std::int64_t{0});
  EXPECT_EQ(total, 7);  // n - k + 1
  // "AC" = A<<2|C = 0b0001 = 1, occurs twice.
  EXPECT_EQ(spectrum[1], 2);
  // "TA" = T<<2|A = 0b1100 = 12, occurs once.
  EXPECT_EQ(spectrum[12], 1);
}

TEST(SeqStatsTest, KmerSpectrumEdgeCases) {
  EXPECT_THROW((void)seq::kmer_spectrum(Sequence("s", "ACGT"), 0),
               InvalidArgument);
  EXPECT_THROW((void)seq::kmer_spectrum(Sequence("s", "ACGT"), 13),
               InvalidArgument);
  // Sequence shorter than k: all-zero spectrum.
  const auto spectrum = seq::kmer_spectrum(Sequence("s", "AC"), 3);
  for (const auto count : spectrum) EXPECT_EQ(count, 0);
}

TEST(SeqStatsTest, EntropyOrdersRandomVsRepetitive) {
  const Sequence random = testutil::random_sequence(20'000, 5);
  std::string repeat;
  for (int i = 0; i < 5000; ++i) repeat += "ACGG";
  const Sequence repetitive("r", repeat);
  const double random_entropy = seq::kmer_entropy(random, 6);
  const double repeat_entropy = seq::kmer_entropy(repetitive, 6);
  EXPECT_GT(random_entropy, 11.0);  // close to the 12-bit maximum
  EXPECT_LT(repeat_entropy, 3.0);   // only 4 distinct 6-mers
}

TEST(SeqStatsTest, HomopolymerRun) {
  EXPECT_EQ(seq::longest_homopolymer(Sequence("s", "ACGT")), 1);
  EXPECT_EQ(seq::longest_homopolymer(Sequence("s", "AAACGGGGT")), 4);
  EXPECT_EQ(seq::longest_homopolymer(Sequence()), 0);
}

TEST(SeqStatsTest, SampledIdentitySeparatesHomologsFromRandom) {
  // Positional identity is only meaningful without frame shifts, so use
  // a substitution-only divergence model (indels destroy the register,
  // which a separate assertion documents below).
  const Sequence ancestor = seq::generate_chromosome("a", 12'000, 3);
  seq::MutationModel snp_only;
  snp_only.snp_rate = 0.02;
  snp_only.indel_rate = 0.0;
  snp_only.segment_rate = 0.0;
  const Sequence homolog =
      seq::mutate_homolog(ancestor, snp_only, 4, "h");
  const Sequence random = testutil::random_sequence(ancestor.size(), 99);

  const double related = seq::sampled_identity(ancestor, homolog, 7);
  const double unrelated = seq::sampled_identity(ancestor, random, 7);
  EXPECT_GT(related, 0.95);
  EXPECT_NEAR(unrelated, 0.25, 0.05);

  // With indels the register is lost and positional identity collapses
  // toward the random baseline — which is exactly why alignment (not
  // positional comparison) is needed for real homologs.
  seq::MutationModel with_indels = snp_only;
  with_indels.indel_rate = 0.002;
  const Sequence shifted =
      seq::mutate_homolog(ancestor, with_indels, 5, "h2");
  EXPECT_LT(seq::sampled_identity(ancestor, shifted, 7), 0.6);

  EXPECT_THROW((void)seq::sampled_identity(random, random, 0),
               InvalidArgument);
}

TEST(SeqStatsTest, SyntheticChromosomeLooksRandomEnough) {
  // The generator must not produce pathological repeats that would make
  // alignment scores meaningless.
  const Sequence chromosome = seq::generate_chromosome("c", 50'000, 11);
  EXPECT_LT(seq::longest_homopolymer(chromosome), 20);
  EXPECT_GT(seq::kmer_entropy(chromosome, 8), 14.0);
}

}  // namespace
}  // namespace mgpusw
