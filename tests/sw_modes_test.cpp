#include <gtest/gtest.h>

#include <vector>

#include "sw/modes.hpp"
#include "sw/reference.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Sequence;
using sw::Score;
using sw::ScoreScheme;

const ScoreScheme kDefault{};

// Full-matrix oracle with mode-dependent boundaries; deliberately written
// independently of src/sw/modes.cpp.
struct Oracle {
  bool free_top;
  bool free_left;
  bool best_last_row;
  bool best_last_col;

  sw::ScoreResult run(const ScoreScheme& s, const Sequence& q,
                      const Sequence& b) const {
    const std::int64_t m = q.size();
    const std::int64_t n = b.size();
    const auto idx = [n](std::int64_t i, std::int64_t j) {
      return static_cast<std::size_t>(i * (n + 1) + j);
    };
    std::vector<Score> h(static_cast<std::size_t>((m + 1) * (n + 1)));
    std::vector<Score> e(h.size(), sw::kNegInf);
    std::vector<Score> f(h.size(), sw::kNegInf);
    h[idx(0, 0)] = 0;
    for (std::int64_t j = 1; j <= n; ++j) {
      h[idx(0, j)] = free_top
                         ? 0
                         : -(s.gap_open + static_cast<Score>(j) * s.gap_extend);
      e[idx(0, j)] = h[idx(0, j)];
    }
    for (std::int64_t i = 1; i <= m; ++i) {
      h[idx(i, 0)] = free_left
                         ? 0
                         : -(s.gap_open + static_cast<Score>(i) * s.gap_extend);
      f[idx(i, 0)] = h[idx(i, 0)];
    }
    for (std::int64_t i = 1; i <= m; ++i) {
      for (std::int64_t j = 1; j <= n; ++j) {
        e[idx(i, j)] = std::max<Score>(e[idx(i, j - 1)] - s.gap_extend,
                                       h[idx(i, j - 1)] - s.gap_first());
        f[idx(i, j)] = std::max<Score>(f[idx(i - 1, j)] - s.gap_extend,
                                       h[idx(i - 1, j)] - s.gap_first());
        h[idx(i, j)] = std::max(
            {h[idx(i - 1, j - 1)] + s.substitution(q.at(i - 1), b.at(j - 1)),
             e[idx(i, j)], f[idx(i, j)]});
      }
    }
    sw::ScoreResult best{sw::kNegInf, {-1, -1}};
    auto consider = [&](std::int64_t i, std::int64_t j) {
      const Score score = h[idx(i, j)];
      const sw::CellPos pos{i - 1, j - 1};
      if (score > best.score ||
          (score == best.score &&
           (pos.row < best.end.row ||
            (pos.row == best.end.row && pos.col < best.end.col)))) {
        best = sw::ScoreResult{score, pos};
      }
    };
    if (!best_last_row && !best_last_col) {
      consider(m, n);
    } else {
      if (best_last_row) {
        for (std::int64_t j = 1; j <= n; ++j) consider(m, j);
      }
      if (best_last_col) {
        for (std::int64_t i = 1; i <= m; ++i) consider(i, n);
      }
    }
    return best;
  }
};

// ---------------------------------------------------------------------------
// global_score

TEST(GlobalScoreTest, MatchesReferenceGlobal) {
  for (int seed = 0; seed < 8; ++seed) {
    auto [a, b] = testutil::related_pair(
        150, static_cast<std::uint64_t>(seed) + 5);
    for (const ScoreScheme& scheme : testutil::test_schemes()) {
      EXPECT_EQ(global_score(scheme, a, b),
                reference_global_score(scheme, a, b))
          << "seed " << seed;
    }
  }
}

TEST(GlobalScoreTest, EmptyCases) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  EXPECT_EQ(global_score(kDefault, empty, empty), 0);
  EXPECT_EQ(global_score(kDefault, s, empty), -(3 + 4 * 2));
  EXPECT_EQ(global_score(kDefault, empty, s), -(3 + 4 * 2));
}

// ---------------------------------------------------------------------------
// semi_global_score

TEST(SemiGlobalTest, FindsContainedQuery) {
  const Sequence query("q", "ACGTACG");
  const Sequence subject("s", "TTTTACGTACGTTTT");
  const auto result = semi_global_score(kDefault, query, subject);
  EXPECT_EQ(result.score, 7);  // full-length exact placement
  EXPECT_EQ(result.end.row, 6);
  EXPECT_EQ(result.end.col, 10);
}

TEST(SemiGlobalTest, PaysForQueryOverhang) {
  // The query must be consumed entirely, so a query longer than the
  // subject pays gap costs.
  const Sequence query("q", "AAAACGTAAAA");
  const Sequence subject("s", "ACGT");
  const auto result = semi_global_score(kDefault, query, subject);
  EXPECT_LT(result.score, 4);
}

TEST(SemiGlobalTest, EmptyInputs) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  EXPECT_EQ(semi_global_score(kDefault, empty, s).score, 0);
  // Non-empty query vs empty subject: all deletions.
  EXPECT_EQ(semi_global_score(kDefault, s, empty).score, -(3 + 4 * 2));
}

class SemiGlobalProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SemiGlobalProperty, MatchesOracle) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  const auto query = testutil::random_sequence(
      20 + seed * 5, static_cast<std::uint64_t>(seed) * 3 + 1);
  const auto subject = testutil::random_sequence(
      60 + seed * 9, static_cast<std::uint64_t>(seed) * 3 + 2);
  const Oracle oracle{true, false, true, false};
  EXPECT_EQ(semi_global_score(scheme, query, subject),
            oracle.run(scheme, query, subject));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, SemiGlobalProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 8)));

// ---------------------------------------------------------------------------
// overlap_score

TEST(OverlapTest, DetectsSuffixPrefixOverlap) {
  // query suffix "GGGCCC" == subject prefix.
  const Sequence query("q", "AAAATTTTGGGCCC");
  const Sequence subject("s", "GGGCCCTTAAAGGG");
  const auto result = overlap_score(kDefault, query, subject);
  EXPECT_EQ(result.score, 6);
  EXPECT_EQ(result.end.row, 13);  // query consumed to its end
  EXPECT_EQ(result.end.col, 5);   // subject position after the overlap
}

TEST(OverlapTest, ContainmentScoresFullInnerSequence) {
  const Sequence inner("q", "ACGTACG");
  const Sequence outer("s", "TTTTACGTACGTTTT");
  EXPECT_EQ(overlap_score(kDefault, inner, outer).score, 7);
  EXPECT_EQ(overlap_score(kDefault, outer, inner).score, 7);
}

TEST(OverlapTest, EmptyInputs) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  EXPECT_EQ(overlap_score(kDefault, empty, s).score, 0);
  EXPECT_EQ(overlap_score(kDefault, s, empty).score, 0);
}

class OverlapProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OverlapProperty, MatchesOracle) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  const auto query = testutil::random_sequence(
      30 + seed * 7, static_cast<std::uint64_t>(seed) * 5 + 11);
  const auto subject = testutil::random_sequence(
      40 + seed * 5, static_cast<std::uint64_t>(seed) * 5 + 12);
  const Oracle oracle{true, true, true, true};
  EXPECT_EQ(overlap_score(scheme, query, subject),
            oracle.run(scheme, query, subject));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, OverlapProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 8)));

// Mode ordering sanity: local >= overlap >= semi-global >= global for
// any input (each mode is a restriction of the previous one).
TEST(ModesTest, ModeOrdering) {
  for (int seed = 0; seed < 6; ++seed) {
    auto [a, b] = testutil::related_pair(
        120, static_cast<std::uint64_t>(seed) + 90);
    const Score local = reference_score(kDefault, a, b).score;
    const Score overlap = overlap_score(kDefault, a, b).score;
    const Score semi = semi_global_score(kDefault, a, b).score;
    const Score global = global_score(kDefault, a, b);
    EXPECT_GE(local, overlap) << "seed " << seed;
    EXPECT_GE(overlap, semi) << "seed " << seed;
    EXPECT_GE(semi, global) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mgpusw
