#include <gtest/gtest.h>

#include "base/error.hpp"
#include "seq/synth.hpp"
#include "sw/heuristic.hpp"
#include "sw/linear.hpp"
#include "sw/reference.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Sequence;
using sw::ScoreScheme;

const ScoreScheme kDefault{};

TEST(UngappedExtendTest, PerfectMatchExtendsFully) {
  const Sequence s("s", "ACGTACGTACGT");
  const auto extension = ungapped_extend(kDefault, s, s, 5, 5);
  EXPECT_EQ(extension.score, 12);
  EXPECT_EQ(extension.query_begin, 0);
  EXPECT_EQ(extension.query_end, 12);
  EXPECT_EQ(extension.subject_begin, 0);
  EXPECT_EQ(extension.subject_end, 12);
}

TEST(UngappedExtendTest, StopsAtXdrop) {
  // Match island of 6 bases surrounded by mismatches on both sides.
  const Sequence a("a", "TTTTTTACGTACTTTTTT");
  const Sequence b("b", "GGGGGGACGTACGGGGGG");
  const auto extension =
      ungapped_extend(kDefault, a, b, 8, 8, /*xdrop=*/5);
  EXPECT_EQ(extension.score, 6);
  EXPECT_EQ(extension.query_begin, 6);
  EXPECT_EQ(extension.query_end, 12);
}

TEST(UngappedExtendTest, AnchorOnMismatchCanRecover) {
  // The anchor pair itself mismatches but matches surround it.
  const Sequence a("a", "ACGTACGTA");
  const Sequence b("b", "ACGTTCGTA");  // centre differs
  const auto extension = ungapped_extend(kDefault, a, b, 4, 4, 10);
  EXPECT_EQ(extension.score, 8 - 3);  // 8 matches, 1 mismatch
}

TEST(UngappedExtendTest, ValidatesArguments) {
  const Sequence s("s", "ACGT");
  EXPECT_THROW((void)ungapped_extend(kDefault, s, s, 4, 0),
               InvalidArgument);
  EXPECT_THROW((void)ungapped_extend(kDefault, s, s, 0, -1),
               InvalidArgument);
  EXPECT_THROW((void)ungapped_extend(kDefault, s, s, 0, 0, 0),
               InvalidArgument);
}

TEST(SeedExtendTest, FindsEmbeddedIdenticalRegion) {
  const Sequence a("a", "TTTTTTTTTTTTTTTTACGTACGTACGTACGTTTTTTTTTTTTTTTT");
  const Sequence b("b", "GGGGGGGGGGGGGGGGACGTACGTACGTACGTGGGGGGGGGGGGGGG");
  sw::SeedExtendConfig config;
  config.word = 8;
  const auto extension = seed_and_extend(kDefault, a, b, config);
  EXPECT_EQ(extension.score, 16);
  EXPECT_EQ(extension.query_begin, 16);
  EXPECT_EQ(extension.query_end, 32);
}

TEST(SeedExtendTest, NoSeedsMeansZero) {
  const Sequence a("a", std::string(100, 'A'));
  const Sequence b("b", std::string(100, 'T'));
  sw::SeedExtendConfig config;
  config.word = 8;
  EXPECT_EQ(seed_and_extend(kDefault, a, b, config).score, 0);
}

TEST(SeedExtendTest, ShortInputsReturnZero) {
  const Sequence a("a", "ACG");
  const Sequence b = testutil::random_sequence(100, 1);
  EXPECT_EQ(seed_and_extend(kDefault, a, b).score, 0);
}

// Property: the heuristic can never beat exact Smith-Waterman, and on
// gap-free matches it ties.
TEST(SeedExtendTest, NeverBeatsExactAndTiesWithoutGaps) {
  for (int seed = 0; seed < 8; ++seed) {
    auto [a, b] = testutil::related_pair(
        300, static_cast<std::uint64_t>(seed) + 400);
    const auto exact = sw::linear_score(kDefault, a, b);
    sw::SeedExtendConfig config;
    config.word = 8;
    const auto heuristic = seed_and_extend(kDefault, a, b, config);
    EXPECT_LE(heuristic.score, exact.score) << "seed " << seed;
  }
  // Gap-free case: identical sequences.
  const Sequence s = testutil::random_sequence(400, 500);
  sw::SeedExtendConfig config;
  config.word = 12;
  config.xdrop = 100;
  EXPECT_EQ(seed_and_extend(kDefault, s, s, config).score, 400);
}

// The paper's motivation in miniature: on indel-rich homologs the
// ungapped heuristic is structurally unable to cross gaps, so exact SW
// recovers a strictly better alignment.
TEST(SeedExtendTest, ExactBeatsHeuristicOnIndelRichHomologs) {
  const seq::Sequence ancestor = seq::generate_chromosome("a", 4000, 7);
  seq::MutationModel model;
  model.snp_rate = 0.01;
  model.indel_rate = 0.01;  // plenty of gaps
  model.segment_rate = 0.0;
  const seq::Sequence homolog =
      seq::mutate_homolog(ancestor, model, 8, "h");

  const auto exact = sw::linear_score(kDefault, ancestor, homolog);
  sw::SeedExtendConfig config;
  config.word = 12;
  const auto heuristic =
      seed_and_extend(kDefault, ancestor, homolog, config);
  EXPECT_LT(heuristic.score, exact.score / 2)
      << "heuristic should be far below exact on gapped homologs";
  EXPECT_GT(heuristic.score, 0);
}

}  // namespace
}  // namespace mgpusw
