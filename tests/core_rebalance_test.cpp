// Dynamic load rebalancing tests — rate estimation and hysteresis at the
// unit level, the closed loop (mis-split run → cooperative stop →
// re-split restart) end to end, and the simulator's model of it. The
// headline property mirrors recovery's: a rebalanced run must be
// bit-identical to a run that never re-split.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "base/error.hpp"
#include "core/engine.hpp"
#include "core/rebalance.hpp"
#include "core/recovery.hpp"
#include "core/report.hpp"
#include "sim/pipeline_sim.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::DeviceRateSample;
using core::EngineConfig;
using core::MultiDeviceEngine;
using core::ProgressEvent;
using core::RebalanceController;
using core::RebalancePolicy;
using core::RecoveryPolicy;
using core::RecoveryResult;
using core::run_with_recovery;

// ---------------------------------------------------------------------------
// Rate estimation and imbalance arithmetic (pure functions).

TEST(RebalanceMathTest, EstimateRatesConvertsToCellsPerSecond) {
  const std::vector<DeviceRateSample> samples = {
      {1'000'000, 1'000'000'000},  // 1e6 cells in 1 s
      {500'000, 250'000'000},      // 5e5 cells in 0.25 s
  };
  const std::vector<double> rates = core::estimate_rates(samples);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 1e6);
  EXPECT_DOUBLE_EQ(rates[1], 2e6);
}

TEST(RebalanceMathTest, EstimateRatesEmptyUntilEveryDeviceMeasured) {
  EXPECT_TRUE(core::estimate_rates({{1000, 100}, {0, 100}}).empty());
  EXPECT_TRUE(core::estimate_rates({{1000, 100}, {1000, 0}}).empty());
  EXPECT_FALSE(core::estimate_rates({{1000, 100}, {1000, 50}}).empty());
}

TEST(RebalanceMathTest, ProportionalSplitHasZeroImbalance) {
  // Shares proportional to rates: every device projects the same finish
  // time, whatever the absolute scale.
  EXPECT_DOUBLE_EQ(core::split_imbalance({0.8, 0.2}, {40.0, 10.0}), 0.0);
  EXPECT_DOUBLE_EQ(core::split_imbalance({0.5, 0.5}, {7.0, 7.0}), 0.0);
}

TEST(RebalanceMathTest, FourToOneMisSplitOnEqualDevicesIsThree) {
  // An 80/20 split over equal devices: the big slice takes 4x the time
  // of the small one — imbalance 3.0 (the acceptance scenario).
  EXPECT_DOUBLE_EQ(core::split_imbalance({0.8, 0.2}, {1.0, 1.0}), 3.0);
}

TEST(RebalanceMathTest, NormalizeWeightsSumsToOne) {
  const std::vector<double> w = core::normalize_weights({4.0, 1.0});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.8);
  EXPECT_DOUBLE_EQ(w[1], 0.2);
  EXPECT_THROW((void)core::normalize_weights({0.0, 0.0}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Controller: hysteresis on fabricated phase totals.

ProgressEvent make_event(int device, std::int64_t units,
                         std::int64_t cells, std::int64_t busy_ns) {
  ProgressEvent event;
  event.device_index = device;
  event.completed_units = units;
  event.total_units = 100;
  event.device_cells_done = cells;
  event.busy_ns = busy_ns;
  return event;
}

RebalancePolicy quick_policy() {
  RebalancePolicy policy;
  policy.enabled = true;
  policy.check_every_rows = 2;
  policy.min_imbalance = 0.5;
  policy.max_resplits = 2;
  return policy;
}

TEST(RebalanceControllerTest, BalancedRatesNeverTrip) {
  RebalanceController controller(quick_policy());
  controller.set_planned_shares({8.0, 2.0});  // 4:1 split...
  for (std::int64_t row = 1; row <= 10; ++row) {
    // ...and 4:1 measured rates: same cells per row, the big slice's
    // device burns 1/4 the time per cell.
    controller.observe(make_event(0, row, row * 8000, row * 250));
    controller.observe(make_event(1, row, row * 2000, row * 250));
  }
  EXPECT_FALSE(controller.stop_requested());
  EXPECT_GE(controller.checks_run(), 1);
  EXPECT_NEAR(controller.last_imbalance(), 0.0, 1e-9);
}

TEST(RebalanceControllerTest, MisSplitTripsAndReportsMeasuredWeights) {
  RebalanceController controller(quick_policy());
  controller.set_planned_shares({8.0, 2.0});  // 4:1 split...
  for (std::int64_t row = 1; row <= 2; ++row) {
    // ...on equal devices: per row the big slice takes 4x the time.
    controller.observe(make_event(0, row, row * 8000, row * 1000));
    controller.observe(make_event(1, row, row * 2000, row * 250));
  }
  EXPECT_TRUE(controller.stop_requested());
  EXPECT_NEAR(controller.last_imbalance(), 3.0, 1e-9);
  const std::vector<double> weights = controller.observed_weights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_NEAR(weights[0], 0.5, 1e-9);  // equal measured rates
  EXPECT_NEAR(weights[1], 0.5, 1e-9);
}

TEST(RebalanceControllerTest, NoEvaluationBelowCheckInterval) {
  RebalanceController controller(quick_policy());
  controller.set_planned_shares({8.0, 2.0});
  // Wildly imbalanced, but only one unit of progress (< check_every 2).
  controller.observe(make_event(0, 1, 8000, 8000));
  controller.observe(make_event(1, 1, 2000, 10));
  EXPECT_FALSE(controller.stop_requested());
  EXPECT_EQ(controller.checks_run(), 0);
}

TEST(RebalanceControllerTest, WaitsForEveryDeviceToReport) {
  RebalanceController controller(quick_policy());
  controller.set_planned_shares({8.0, 2.0});
  for (std::int64_t row = 1; row <= 10; ++row) {
    controller.observe(make_event(0, row, row * 8000, row * 1000));
  }
  EXPECT_FALSE(controller.stop_requested());  // device 1 never reported
  EXPECT_EQ(controller.checks_run(), 0);
}

TEST(RebalanceControllerTest, ResumedRunsMeasureProgressFromBaseline) {
  // A resumed device starts reporting at completed_units 6; the check
  // interval counts from there, not from zero.
  RebalanceController controller(quick_policy());
  controller.set_planned_shares({8.0, 2.0});
  controller.observe(make_event(0, 6, 8000, 1000));
  controller.observe(make_event(1, 6, 2000, 250));
  EXPECT_EQ(controller.checks_run(), 0);  // one unit of progress each
  controller.observe(make_event(0, 7, 16000, 2000));
  controller.observe(make_event(1, 7, 4000, 500));
  EXPECT_TRUE(controller.stop_requested());  // two units -> evaluated
}

// ---------------------------------------------------------------------------
// End to end: a deliberately mis-split run stops, re-splits with the
// measured rates, and the recovered result is bit-identical — across
// kernels x schedules (the acceptance matrix).

EngineConfig misbalanced_config(const std::string& kernel,
                                core::Schedule schedule) {
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.schedule = schedule;
  config.kernel = kernel;
  // The mis-calibration: a 4:1 split over two equal-speed devices.
  config.balance = core::BalanceMode::kCustomWeights;
  config.custom_weights = {4.0, 1.0};
  config.rebalance.enabled = true;
  config.rebalance.check_every_rows = 2;
  config.rebalance.min_imbalance = 0.5;
  config.rebalance.max_resplits = 2;
  return config;
}

class RebalanceMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, core::Schedule>> {};

TEST_P(RebalanceMatrix, MisSplitRebalancesBitIdentically) {
  const auto& [kernel, schedule] = GetParam();
  auto [a, b] = testutil::related_pair(512, 301);
  EngineConfig config = misbalanced_config(kernel, schedule);

  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(10.0));

  // Reference: same config without the rebalancer.
  EngineConfig plain = config;
  plain.rebalance = RebalancePolicy{};
  MultiDeviceEngine reference(plain, {&d0, &d1});
  const auto expected = reference.run(a, b);
  EXPECT_EQ(expected.best, sw::linear_score(sw::ScoreScheme{}, a, b));

  const RecoveryResult rebalanced =
      run_with_recovery(config, {&d0, &d1}, a, b);
  EXPECT_EQ(rebalanced.result.best, expected.best);
  EXPECT_GE(rebalanced.rebalances, 1);
  EXPECT_LE(rebalanced.rebalances, config.rebalance.max_resplits);
  EXPECT_EQ(rebalanced.restarts, rebalanced.rebalances);  // no faults
  EXPECT_TRUE(rebalanced.lost_devices.empty());
  // The re-split tracked the measured rates: two equal devices end up
  // with roughly equal weights instead of 4:1.
  ASSERT_EQ(rebalanced.rebalanced_weights.size(), 2u);
  EXPECT_LT(rebalanced.rebalanced_weights[0], 0.75);
  EXPECT_GT(rebalanced.rebalanced_weights[1], 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndSchedules, RebalanceMatrix,
    ::testing::Combine(::testing::Values("simd", "row"),
                       ::testing::Values(core::Schedule::kRowMajor,
                                         core::Schedule::kDiagonal)),
    [](const auto& info) {
      return std::get<0>(info.param) +
             std::string(std::get<1>(info.param) ==
                                 core::Schedule::kRowMajor
                             ? "RowMajor"
                             : "Diagonal");
    });

// ---------------------------------------------------------------------------
// A device throttled mid-run (thermal throttling, a noisy co-tenant):
// the initially fair split turns lopsided, the controller catches it.

TEST(RebalanceE2ETest, MidRunThrottleTriggersRebalance) {
  auto [a, b] = testutil::related_pair(512, 302);
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.balance = core::BalanceMode::kEqual;
  config.rebalance.enabled = true;
  config.rebalance.check_every_rows = 4;
  config.rebalance.min_imbalance = 0.5;

  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(10.0));

  MultiDeviceEngine reference(config, {&d0, &d1});
  const auto expected = reference.run(a, b);

  // Throttle device 1 hard once it has finished its first block row of
  // the rebalanced run; every later kernel pays 8x.
  std::atomic<bool> throttled{false};
  config.progress = [&](const ProgressEvent& event) {
    if (event.device_index == 1 && event.completed_units >= 1 &&
        !throttled.exchange(true)) {
      d1.set_slowdown(8.0);
    }
  };

  RecoveryPolicy policy;
  policy.max_restarts = 3;
  const RecoveryResult rebalanced =
      run_with_recovery(config, {&d0, &d1}, a, b, policy);
  EXPECT_EQ(rebalanced.result.best, expected.best);
  EXPECT_GE(rebalanced.rebalances, 1);
  EXPECT_TRUE(rebalanced.lost_devices.empty());
  // The throttled device's share shrank below its fair half.
  ASSERT_EQ(rebalanced.rebalanced_weights.size(), 2u);
  EXPECT_LT(rebalanced.rebalanced_weights[1],
            rebalanced.rebalanced_weights[0]);
  d1.set_slowdown(1.0);
}

// ---------------------------------------------------------------------------
// Policy bounds: the re-split count is capped, and the cap never
// strands the run (the final attempt completes without a controller).

TEST(RebalanceE2ETest, ResplitCountCappedByPolicy) {
  auto [a, b] = testutil::related_pair(512, 303);
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.rebalance.enabled = true;
  config.rebalance.check_every_rows = 2;
  // A negative threshold trips the controller at every evaluation — the
  // pathological always-fire policy only the cap can stop.
  config.rebalance.min_imbalance = -1.0;
  config.rebalance.max_resplits = 2;

  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(10.0));

  EngineConfig plain = config;
  plain.rebalance = RebalancePolicy{};
  MultiDeviceEngine reference(plain, {&d0, &d1});
  const auto expected = reference.run(a, b);

  RecoveryPolicy policy;
  policy.max_restarts = 5;
  const RecoveryResult rebalanced =
      run_with_recovery(config, {&d0, &d1}, a, b, policy);
  EXPECT_EQ(rebalanced.result.best, expected.best);
  EXPECT_EQ(rebalanced.rebalances, 2);  // exactly the cap
  EXPECT_EQ(rebalanced.restarts, 2);    // shared budget: one per re-split
}

TEST(RebalanceE2ETest, BalancedRunNeverRestarts) {
  auto [a, b] = testutil::related_pair(512, 304);
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.balance = core::BalanceMode::kEqual;
  config.rebalance.enabled = true;
  config.rebalance.check_every_rows = 2;

  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(10.0));
  const RecoveryResult result =
      run_with_recovery(config, {&d0, &d1}, a, b);
  EXPECT_EQ(result.rebalances, 0);
  EXPECT_EQ(result.restarts, 0);
  EXPECT_TRUE(result.rebalanced_weights.empty());
  EXPECT_EQ(result.result.best,
            sw::linear_score(sw::ScoreScheme{}, a, b));
}

TEST(RebalanceE2ETest, ProgressEventsCarryBusyAndRebalanceCounts) {
  auto [a, b] = testutil::related_pair(512, 305);
  EngineConfig config = misbalanced_config("simd", core::Schedule::kRowMajor);
  std::atomic<std::int64_t> max_busy{0};
  std::atomic<int> max_rebalances{0};
  config.progress = [&](const ProgressEvent& event) {
    std::int64_t busy = max_busy.load();
    while (event.busy_ns > busy &&
           !max_busy.compare_exchange_weak(busy, event.busy_ns)) {
    }
    int seen = max_rebalances.load();
    while (event.rebalances > seen &&
           !max_rebalances.compare_exchange_weak(seen, event.rebalances)) {
    }
  };

  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(10.0));
  const RecoveryResult result =
      run_with_recovery(config, {&d0, &d1}, a, b);
  EXPECT_GE(result.rebalances, 1);
  EXPECT_GT(max_busy.load(), 0);
  EXPECT_EQ(max_rebalances.load(), result.rebalances);
}

TEST(RebalanceE2ETest, ReportCarriesRebalanceFields) {
  RecoveryResult result;
  result.restarts = 2;
  result.rebalances = 1;
  result.rebalanced_weights = {0.5, 0.5};
  result.result.best.score = 7;
  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"rebalances\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rebalanced_weights\": [0.5, 0.5]"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Simulator model: the acceptance scenario — a 4x mis-calibrated
// profile must show >= 1.3x GCUPS with rebalancing on.

sim::SimConfig miscalibrated_sim() {
  sim::SimConfig config;
  config.rows = 1 << 16;
  config.cols = 1 << 16;
  config.block_rows = 512;
  config.block_cols = 512;
  config.devices = {vgpu::toy_device(10.0), vgpu::toy_device(10.0)};
  config.weights = {4.0, 1.0};  // planner believes 4:1; truth is 1:1
  config.rebalance.enabled = true;
  config.rebalance.check_every_rows = 8;
  config.rebalance.min_imbalance = 0.5;
  config.rebalance.max_resplits = 2;
  config.checkpoint_interval = 4;
  return config;
}

TEST(RebalanceSimTest, MiscalibratedProfileGainsAtLeast1_3x) {
  const sim::SimConfig config = miscalibrated_sim();
  const double stat = sim::simulate_pipeline(config).gcups();
  const sim::RebalanceSimResult dynamic = sim::simulate_rebalance(config);
  ASSERT_GT(stat, 0.0);
  EXPECT_GE(dynamic.gcups() / stat, 1.3);
  EXPECT_EQ(dynamic.resplits, 1);  // one correction is enough
  // check row 8 is a checkpoint row (interval 4): nothing recomputed.
  EXPECT_EQ(dynamic.wasted_cells, 0);
  ASSERT_EQ(dynamic.steps.size(), 2u);
  EXPECT_GT(dynamic.steps[0].imbalance, 0.5);
  EXPECT_LT(dynamic.steps[1].imbalance, 0.5);
}

TEST(RebalanceSimTest, DisabledPolicyMatchesStaticRun) {
  sim::SimConfig config = miscalibrated_sim();
  config.rebalance.enabled = false;
  const sim::SimResult stat = sim::simulate_pipeline(config);
  const sim::RebalanceSimResult dynamic = sim::simulate_rebalance(config);
  EXPECT_EQ(dynamic.result.makespan_ns, stat.makespan_ns);
  EXPECT_EQ(dynamic.resplits, 0);
  EXPECT_EQ(dynamic.result.total_cells, stat.total_cells);
}

TEST(RebalanceSimTest, WellCalibratedProfileNeverResplits) {
  sim::SimConfig config = miscalibrated_sim();
  config.weights.clear();  // profile-proportional: the truth
  const sim::RebalanceSimResult dynamic = sim::simulate_rebalance(config);
  EXPECT_EQ(dynamic.resplits, 0);
  ASSERT_EQ(dynamic.steps.size(), 1u);
  EXPECT_NEAR(dynamic.steps[0].imbalance, 0.0, 1e-9);
}

TEST(RebalanceSimTest, CheckRowOffCheckpointGridWastesRecomputedRows) {
  sim::SimConfig config = miscalibrated_sim();
  config.rebalance.check_every_rows = 6;  // checkpoint grid is 4
  const sim::RebalanceSimResult dynamic = sim::simulate_rebalance(config);
  EXPECT_EQ(dynamic.resplits, 1);
  // Stopped at block row 6, newest checkpoint at 4: rows 5-6 recomputed.
  EXPECT_EQ(dynamic.wasted_cells, 2 * config.block_rows * config.cols);
  // Still a clear win despite the waste.
  const double stat = sim::simulate_pipeline(config).gcups();
  EXPECT_GE(dynamic.gcups() / stat, 1.3);
}

}  // namespace
}  // namespace mgpusw
