// Durable job journal tests: record framing round-trips, the
// skip-corrupt-tail replay discipline, atomic compaction, idempotent
// resubmission, and the headline end-to-end property — a daemon killed
// hard with queued and running jobs restarts on the same journal,
// every job reaches a terminal state, the scores are bit-identical to
// an unfailed run, and the mid-flight job demonstrably resumes from a
// disk checkpoint instead of row zero.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "serve/client_lib.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace mgpusw::serve {
namespace {

/// Fresh journal directory under the gtest temp root.
std::string make_journal_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "journal_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SubmitRequest synthetic_spec(const std::string& tenant,
                             const std::string& label, std::int64_t rows,
                             std::int64_t cols, std::int64_t seed) {
  SubmitRequest spec;
  spec.tenant = tenant;
  spec.label = label;
  spec.rows = rows;
  spec.cols = cols;
  spec.seed = seed;
  return spec;
}

ServerConfig journal_server_config(const std::string& dir) {
  ServerConfig config;
  config.port = 0;
  config.devices = 2;
  config.scheduler_threads = 1;
  config.devices_per_job = 1;
  config.block = 64;
  config.quota.max_pending_per_tenant = 8;
  config.journal_dir = dir;
  config.journal_checkpoint_interval_ms = 0;  // journal every advance
  return config;
}

// --- record framing --------------------------------------------------------

TEST(JournalRecordCodec, SubmitRoundTripsSpec) {
  JournalRecord record;
  record.kind = JournalRecord::Kind::kSubmit;
  record.job_id = 7;
  record.spec = synthetic_spec("alice", "chr1-vs-chr2", 4096, 2048, 99);
  record.spec.priority = 3;
  record.spec.idempotency_key = "retry-42";
  const JournalRecord back = decode_record(encode_record(record));
  EXPECT_EQ(back.kind, JournalRecord::Kind::kSubmit);
  EXPECT_EQ(back.job_id, 7);
  EXPECT_EQ(back.spec.tenant, "alice");
  EXPECT_EQ(back.spec.label, "chr1-vs-chr2");
  EXPECT_EQ(back.spec.priority, 3);
  EXPECT_EQ(back.spec.rows, 4096);
  EXPECT_EQ(back.spec.cols, 2048);
  EXPECT_EQ(back.spec.seed, 99);
  EXPECT_EQ(back.spec.idempotency_key, "retry-42");
}

TEST(JournalRecordCodec, CheckpointRoundTripsPair) {
  JournalRecord record;
  record.kind = JournalRecord::Kind::kCheckpoint;
  record.job_id = 3;
  record.row = 511;
  record.best_score = 1234;
  record.best_row = 500;
  record.best_col = 77;
  const JournalRecord back = decode_record(encode_record(record));
  EXPECT_EQ(back.kind, JournalRecord::Kind::kCheckpoint);
  EXPECT_EQ(back.row, 511);
  EXPECT_EQ(back.best_score, 1234);
  EXPECT_EQ(back.best_row, 500);
  EXPECT_EQ(back.best_col, 77);
}

TEST(JournalRecordCodec, TerminalRecordsRoundTrip) {
  JournalRecord done;
  done.kind = JournalRecord::Kind::kDone;
  done.job_id = 9;
  done.score = 321;
  done.restarts = 2;
  done.rebalances = 1;
  done.lost_devices = {"dev1"};
  done.resumed_row = 255;
  done.result_json = R"({"best":{"score":321}})";
  JournalRecord back = decode_record(encode_record(done));
  EXPECT_EQ(back.kind, JournalRecord::Kind::kDone);
  EXPECT_EQ(back.score, 321);
  EXPECT_EQ(back.restarts, 2);
  EXPECT_EQ(back.rebalances, 1);
  EXPECT_EQ(back.lost_devices, std::vector<std::string>{"dev1"});
  EXPECT_EQ(back.resumed_row, 255);
  EXPECT_FALSE(back.result_json.empty());

  JournalRecord failed;
  failed.kind = JournalRecord::Kind::kFailed;
  failed.job_id = 10;
  failed.error = "device pool exhausted";
  back = decode_record(encode_record(failed));
  EXPECT_EQ(back.kind, JournalRecord::Kind::kFailed);
  EXPECT_EQ(back.error, "device pool exhausted");
  EXPECT_EQ(back.resumed_row, -1);
}

TEST(JournalRecordCodec, MalformedPayloadThrowsProtocolError) {
  EXPECT_THROW((void)decode_record("not json"), ProtocolError);
  EXPECT_THROW((void)decode_record(R"({"kind":"nope","job_id":1})"),
               ProtocolError);
}

// --- append + replay -------------------------------------------------------

TEST(JobJournalTest, FreshDirectoryReplaysEmpty) {
  const std::string dir = make_journal_dir("fresh");
  JobJournal journal(dir);
  const ReplayResult replayed = journal.replay();
  EXPECT_TRUE(replayed.jobs.empty());
  EXPECT_EQ(replayed.next_job_id, 1);
  EXPECT_EQ(replayed.truncated_bytes, 0);
}

TEST(JobJournalTest, AppendedRecordsFoldIntoJobs) {
  const std::string dir = make_journal_dir("fold");
  {
    JobJournal journal(dir);
    (void)journal.replay();
    JournalRecord submit;
    submit.kind = JournalRecord::Kind::kSubmit;
    submit.job_id = 1;
    submit.spec = synthetic_spec("t", "a", 512, 512, 1);
    journal.append(submit);
    JournalRecord start;
    start.kind = JournalRecord::Kind::kStart;
    start.job_id = 1;
    journal.append(start);
    JournalRecord checkpoint;
    checkpoint.kind = JournalRecord::Kind::kCheckpoint;
    checkpoint.job_id = 1;
    checkpoint.row = 127;
    checkpoint.best_score = 55;
    journal.append(checkpoint);
    // A newer checkpoint supersedes the older one.
    checkpoint.row = 255;
    checkpoint.best_score = 80;
    journal.append(checkpoint);
    submit.job_id = 2;
    submit.spec.label = "b";
    journal.append(submit);
    JournalRecord done;
    done.kind = JournalRecord::Kind::kDone;
    done.job_id = 2;
    done.score = 42;
    journal.append(done);
    EXPECT_EQ(journal.appends(), 6);
  }
  JobJournal reopened(dir);
  const ReplayResult replayed = reopened.replay();
  ASSERT_EQ(replayed.jobs.size(), 2u);
  EXPECT_EQ(replayed.records, 6);
  EXPECT_EQ(replayed.next_job_id, 3);
  const ReplayedJob& first = replayed.jobs[0];
  EXPECT_EQ(first.job_id, 1);
  EXPECT_TRUE(first.started);
  EXPECT_FALSE(first.terminal);
  EXPECT_EQ(first.checkpoint_row, 255);
  EXPECT_EQ(first.best_score, 80);
  const ReplayedJob& second = replayed.jobs[1];
  EXPECT_TRUE(second.terminal);
  EXPECT_EQ(second.outcome.kind, JournalRecord::Kind::kDone);
  EXPECT_EQ(second.outcome.score, 42);
}

TEST(JobJournalTest, TornTailIsTruncatedNotFatal) {
  const std::string dir = make_journal_dir("torn");
  {
    JobJournal journal(dir);
    (void)journal.replay();
    JournalRecord submit;
    submit.kind = JournalRecord::Kind::kSubmit;
    submit.job_id = 1;
    submit.spec = synthetic_spec("t", "a", 512, 512, 1);
    journal.append(submit);
  }
  // A crash mid-append: a frame header promising more bytes than exist.
  {
    std::ofstream log(dir + "/journal.log",
                      std::ios::binary | std::ios::app);
    const std::uint32_t length = 4096;
    const std::uint32_t crc = 0;
    log.write(reinterpret_cast<const char*>(&length), sizeof(length));
    log.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    log.write("torn", 4);
  }
  JobJournal reopened(dir);
  const ReplayResult replayed = reopened.replay();
  ASSERT_EQ(replayed.jobs.size(), 1u);
  EXPECT_EQ(replayed.records, 1);
  EXPECT_EQ(replayed.truncated_bytes, 12);
  // The truncation happened in place: appending then replaying again
  // sees a clean log plus the new record.
  JournalRecord start;
  start.kind = JournalRecord::Kind::kStart;
  start.job_id = 1;
  reopened.append(start);
  JobJournal again(dir);
  const ReplayResult second = again.replay();
  EXPECT_EQ(second.records, 2);
  EXPECT_EQ(second.truncated_bytes, 0);
  EXPECT_TRUE(second.jobs[0].started);
}

TEST(JobJournalTest, CorruptTailRecordIsDropped) {
  const std::string dir = make_journal_dir("corrupt");
  {
    JobJournal journal(dir);
    (void)journal.replay();
    JournalRecord submit;
    submit.kind = JournalRecord::Kind::kSubmit;
    submit.job_id = 1;
    submit.spec = synthetic_spec("t", "a", 512, 512, 1);
    journal.append(submit);
    JournalRecord start;
    start.kind = JournalRecord::Kind::kStart;
    start.job_id = 1;
    journal.append(start);
  }
  // Flip the last payload byte: the CRC no longer matches, so the last
  // record is a corrupt tail.
  const std::string path = dir + "/journal.log";
  const auto size =
      static_cast<std::int64_t>(std::filesystem::file_size(path));
  {
    std::fstream log(path, std::ios::binary | std::ios::in | std::ios::out);
    log.seekg(size - 1);
    char byte = 0;
    log.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    log.seekp(size - 1);
    log.write(&byte, 1);
  }
  JobJournal reopened(dir);
  const ReplayResult replayed = reopened.replay();
  EXPECT_EQ(replayed.records, 1);
  EXPECT_GT(replayed.truncated_bytes, 0);
  ASSERT_EQ(replayed.jobs.size(), 1u);
  EXPECT_FALSE(replayed.jobs[0].started);  // the START record was cut
}

TEST(JobJournalTest, NonJournalFileIsRejected) {
  const std::string dir = make_journal_dir("notajournal");
  {
    std::ofstream log(dir + "/journal.log", std::ios::binary);
    log << "GARBAGEGARBAGE";
  }
  JobJournal journal(dir);
  EXPECT_THROW((void)journal.replay(), IoError);
}

TEST(JobJournalTest, TornHeaderIsRecreated) {
  const std::string dir = make_journal_dir("tornheader");
  {
    std::ofstream log(dir + "/journal.log", std::ios::binary);
    log << "MG";  // died two bytes into the 8-byte header
  }
  JobJournal journal(dir);
  const ReplayResult replayed = journal.replay();
  EXPECT_TRUE(replayed.jobs.empty());
  EXPECT_EQ(replayed.truncated_bytes, 2);
  JournalRecord submit;
  submit.kind = JournalRecord::Kind::kSubmit;
  submit.job_id = 1;
  submit.spec = synthetic_spec("t", "a", 512, 512, 1);
  journal.append(submit);  // the recreated log accepts appends
}

TEST(JobJournalTest, CompactionShrinksAndPreservesFacts) {
  const std::string dir = make_journal_dir("compact");
  JobJournal journal(dir);
  (void)journal.replay();
  JournalRecord submit;
  submit.kind = JournalRecord::Kind::kSubmit;
  submit.job_id = 1;
  submit.spec = synthetic_spec("t", "a", 512, 512, 1);
  journal.append(submit);
  JournalRecord start;
  start.kind = JournalRecord::Kind::kStart;
  start.job_id = 1;
  journal.append(start);
  JournalRecord checkpoint;
  checkpoint.kind = JournalRecord::Kind::kCheckpoint;
  checkpoint.job_id = 1;
  for (std::int64_t row = 63; row < 512; row += 64) {
    checkpoint.row = row;
    journal.append(checkpoint);
  }
  JournalRecord done;
  done.kind = JournalRecord::Kind::kDone;
  done.job_id = 1;
  done.score = 17;
  journal.append(done);
  EXPECT_EQ(journal.appends_since_compact(), 11);
  const auto before =
      std::filesystem::file_size(dir + "/journal.log");

  // Snapshot: the terminal job shrinks to SUBMIT + DONE.
  journal.compact({submit, done});
  EXPECT_EQ(journal.compactions(), 1);
  EXPECT_EQ(journal.appends_since_compact(), 0);
  EXPECT_LT(std::filesystem::file_size(dir + "/journal.log"), before);

  // The compacted log keeps accepting appends...
  submit.job_id = 2;
  submit.spec.label = "late";
  journal.append(submit);

  // ...and a fresh replay sees the snapshot facts plus the new record.
  JobJournal reopened(dir);
  const ReplayResult replayed = reopened.replay();
  ASSERT_EQ(replayed.jobs.size(), 2u);
  EXPECT_TRUE(replayed.jobs[0].terminal);
  EXPECT_EQ(replayed.jobs[0].outcome.score, 17);
  EXPECT_FALSE(replayed.jobs[1].terminal);
  EXPECT_EQ(replayed.next_job_id, 3);
}

// --- daemon end to end -----------------------------------------------------

TEST(JournalEndToEnd, TerminalResultsSurviveRestart) {
  const std::string dir = make_journal_dir("e2e_terminal");
  std::int64_t id = -1;
  std::int64_t score = -1;
  {
    AlignServer server(journal_server_config(dir));
    server.start();
    ServeClient client = ServeClient::connect("127.0.0.1", server.port());
    SubmitRequest request = synthetic_spec("alice", "small", 512, 512, 5);
    id = client.submit(request);
    const JobStatus done = client.result(id);
    ASSERT_EQ(done.state, JobState::kDone);
    score = done.score;
    ASSERT_FALSE(done.result_json.empty());
    server.stop();
  }
  AlignServer restarted(journal_server_config(dir));
  EXPECT_EQ(restarted.replayed_jobs(), 1);
  restarted.start();
  ServeClient client = ServeClient::connect("127.0.0.1", restarted.port());
  const JobStatus replayed = client.result(id);
  EXPECT_EQ(replayed.state, JobState::kDone);
  EXPECT_EQ(replayed.score, score);
  // The result body is served verbatim from the journal.
  EXPECT_FALSE(replayed.result_json.empty());
  restarted.stop();
}

TEST(JournalEndToEnd, IdempotencyKeyDedupesWithinAndAcrossLives) {
  const std::string dir = make_journal_dir("e2e_idem");
  std::int64_t id = -1;
  std::int64_t score = -1;
  SubmitRequest request = synthetic_spec("alice", "idem", 512, 512, 9);
  request.idempotency_key = "once";
  {
    AlignServer server(journal_server_config(dir));
    server.start();
    ServeClient client = ServeClient::connect("127.0.0.1", server.port());
    id = client.submit(request);
    EXPECT_EQ(client.submit(request), id);  // same key -> same job
    EXPECT_EQ(
        server.metrics().counter("serve.jobs_deduped").value(), 1);
    score = client.result(id).score;
    server.stop();
  }
  AlignServer restarted(journal_server_config(dir));
  restarted.start();
  ServeClient client = ServeClient::connect("127.0.0.1", restarted.port());
  // Resubmitting after the restart lands on the replayed job — the
  // daemon returns its finished result instead of recomputing.
  EXPECT_EQ(client.submit(request), id);
  EXPECT_EQ(client.result(id).score, score);
  EXPECT_EQ(
      restarted.metrics().counter("serve.jobs_deduped").value(), 1);
  restarted.stop();
}

TEST(JournalEndToEnd, CancelIntentIsHonouredOnReplay) {
  const std::string dir = make_journal_dir("e2e_cancel");
  {
    // Hand-author the journal of a daemon that accepted a cancel for a
    // running job and died before the engine stopped.
    JobJournal journal(dir);
    (void)journal.replay();
    JournalRecord submit;
    submit.kind = JournalRecord::Kind::kSubmit;
    submit.job_id = 1;
    submit.spec = synthetic_spec("alice", "doomed", 1024, 1024, 3);
    journal.append(submit);
    JournalRecord start;
    start.kind = JournalRecord::Kind::kStart;
    start.job_id = 1;
    journal.append(start);
    JournalRecord cancel;
    cancel.kind = JournalRecord::Kind::kCancel;
    cancel.job_id = 1;
    journal.append(cancel);
  }
  AlignServer server(journal_server_config(dir));
  EXPECT_EQ(server.replayed_jobs(), 1);
  server.start();
  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  const JobStatus status = client.result(1, /*wait=*/false);
  EXPECT_EQ(status.state, JobState::kCancelled);
  server.stop();
}

TEST(JournalEndToEnd, DrainShutdownFinishesRunningKeepsQueued) {
  const std::string dir = make_journal_dir("e2e_drain");
  std::int64_t running_id = -1;
  std::int64_t queued_id = -1;
  std::int64_t score = -1;
  {
    AlignServer server(journal_server_config(dir));
    server.start();
    ServeClient client = ServeClient::connect("127.0.0.1", server.port());
    running_id =
        client.submit(synthetic_spec("alice", "drains", 2048, 2048, 11));
    queued_id =
        client.submit(synthetic_spec("alice", "waits", 1024, 1024, 12));
    while (client.status(running_id).state == JobState::kQueued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    server.request_drain();
    server.stop();  // drains: the running job finishes and journals DONE
    score = 0;
  }
  AlignServer restarted(journal_server_config(dir));
  EXPECT_EQ(restarted.replayed_jobs(), 2);
  restarted.start();
  ServeClient client = ServeClient::connect("127.0.0.1", restarted.port());
  const JobStatus drained = client.result(running_id, /*wait=*/false);
  // The drained job is terminal without having re-run in this life.
  EXPECT_EQ(drained.state, JobState::kDone);
  EXPECT_GE(drained.score, score);
  // The queued job replays as queued and completes normally.
  const JobStatus waited = client.result(queued_id);
  EXPECT_EQ(waited.state, JobState::kDone);
  restarted.stop();
}

// The acceptance scenario: a daemon killed hard with one running and
// two queued jobs restarts on the same journal; every job reaches DONE,
// all scores agree with an unfailed run of the same spec (the queued
// jobs run fresh, so they ARE the reference), and the mid-flight job
// resumed from a disk checkpoint rather than recomputing row zero.
TEST(JournalEndToEnd, HardStopMidJobResumesFromCheckpointBitIdentical) {
  const std::string dir = make_journal_dir("e2e_crash");
  ServerConfig config = journal_server_config(dir);
  std::vector<std::int64_t> ids;
  std::uint16_t port = 0;
  {
    AlignServer server(config);
    server.start();
    port = server.port();
    ServeClient client = ServeClient::connect("127.0.0.1", port);
    // Three identical specs: one runs, two stay queued behind the
    // single scheduler thread (same tenant, running quota default).
    for (int i = 0; i < 3; ++i) {
      ids.push_back(client.submit(
          synthetic_spec("alice", "crash-" + std::to_string(i), 8192,
                         8192, 77)));
    }
    // Wait until the running job has journaled a checkpoint row past
    // the first disk special row (rows land every
    // recovery.checkpoint_interval * block = 256 rows; checkpoints are
    // journaled every settled block row of 64, so the 6th covers row
    // 383 > 255), then kill the daemon without drain: stop() freezes
    // the journal first, so on disk this is a crash.
    obs::Counter& checkpoints =
        server.metrics().counter("serve.journal_checkpoints");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (checkpoints.value() < 6 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(checkpoints.value(), 6) << "no resumable checkpoint journaled";
    ASSERT_EQ(client.status(ids[0]).state, JobState::kRunning);
    server.stop();
  }

  AlignServer restarted(journal_server_config(dir));
  ASSERT_EQ(restarted.replayed_jobs(), 3);
  restarted.start();
  ServeClient client = ServeClient::connect("127.0.0.1", restarted.port());
  std::vector<std::int64_t> scores;
  for (const std::int64_t id : ids) {
    const JobStatus done = client.result(id);
    ASSERT_EQ(done.state, JobState::kDone) << "job " << id;
    scores.push_back(done.score);
  }
  // The two fresh jobs are the unfailed reference; the resumed job must
  // match them bit-identically.
  EXPECT_EQ(scores[0], scores[1]);
  EXPECT_EQ(scores[1], scores[2]);
  // And it really resumed: the run restarted from a positive
  // checkpoint row, not from scratch.
  EXPECT_GT(client.status(ids[0]).resumed_row, 0);
  EXPECT_GE(
      restarted.metrics().counter("serve.journal_replayed_jobs").value(),
      3);
  restarted.stop();
}

TEST(JournalEndToEnd, ClientRidesThroughRestartWithBackoff) {
  const std::string dir = make_journal_dir("e2e_reconnect");
  ServerConfig config = journal_server_config(dir);
  std::int64_t id = -1;
  std::int64_t score = -1;
  std::uint16_t port = 0;
  ReconnectPolicy policy;
  policy.max_attempts = 40;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  auto first = std::make_unique<AlignServer>(config);
  first->start();
  port = first->port();
  ServeClient client =
      ServeClient::connect("127.0.0.1", port, /*timeout_ms=*/0, policy);
  SubmitRequest request = synthetic_spec("alice", "sticky", 512, 512, 21);
  request.idempotency_key = "sticky-1";
  id = client.submit(request);
  score = client.result(id).score;
  first->stop();
  first.reset();

  // Same port, same journal: the client's next request reconnects on
  // the backoff schedule and lands on the restarted daemon.
  config.port = port;
  AlignServer second(config);
  second.start();
  const JobStatus status = client.result(id);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.score, score);
  // A retried submit with the same key dedupes instead of re-running.
  EXPECT_EQ(client.submit(request), id);
  second.stop();
}

TEST(JournalEndToEnd, MetricsExposeJournalCounters) {
  const std::string dir = make_journal_dir("e2e_metrics");
  AlignServer server(journal_server_config(dir));
  server.start();
  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  const std::int64_t id =
      client.submit(synthetic_spec("alice", "m", 512, 512, 2));
  (void)client.result(id);
  const std::string json = client.metrics_json();
  EXPECT_NE(json.find("serve.journal_appends"), std::string::npos);
  EXPECT_NE(json.find("serve.journal_replayed_jobs"), std::string::npos);
  EXPECT_NE(json.find("serve.journal_truncated_bytes"), std::string::npos);
  EXPECT_NE(json.find("serve.journal_compactions"), std::string::npos);
  EXPECT_NE(json.find("serve.journal_checkpoints"), std::string::npos);
  // SUBMIT + START + DONE at minimum.
  EXPECT_GE(server.metrics().counter("serve.journal_appends").value(), 3);
  server.stop();
}

}  // namespace
}  // namespace mgpusw::serve
