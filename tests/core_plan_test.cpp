// Plan-layer tests: make_plan geometry and validation, plus the
// engine–simulator shared-plan contract (both execute the same
// AlignmentPlan value, so slice arithmetic exists in one place).
#include <gtest/gtest.h>

#include <memory>

#include "base/error.hpp"
#include "base/math.hpp"
#include "core/engine.hpp"
#include "core/plan.hpp"
#include "sim/pipeline_sim.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::AlignmentPlan;
using core::make_plan;
using core::PlanRequest;
using core::Schedule;

PlanRequest basic_request() {
  PlanRequest request;
  request.rows = 1000;
  request.cols = 3000;
  request.block_rows = 64;
  request.block_cols = 128;
  request.weights = {1.0, 2.0, 1.0};
  return request;
}

TEST(PlanTest, SlicesTileTheMatrix) {
  const AlignmentPlan plan = make_plan(basic_request());
  ASSERT_EQ(plan.device_count(), 3u);
  EXPECT_EQ(plan.channel_count(), 2u);
  EXPECT_EQ(plan.block_row_count, base::div_ceil(1000, 64));

  std::int64_t cursor = 0;
  for (const core::SlicePlan& device : plan.devices) {
    EXPECT_EQ(device.slice.first_col, cursor);
    EXPECT_GT(device.slice.cols, 0);
    EXPECT_EQ(device.block_columns,
              base::div_ceil(device.slice.cols, plan.block_cols));
    cursor += device.slice.cols;
  }
  EXPECT_EQ(cursor, plan.cols);

  EXPECT_FALSE(plan.devices.front().has_upstream);
  EXPECT_TRUE(plan.devices.front().has_downstream);
  EXPECT_TRUE(plan.devices[1].has_upstream);
  EXPECT_TRUE(plan.devices[1].has_downstream);
  EXPECT_TRUE(plan.devices.back().has_upstream);
  EXPECT_FALSE(plan.devices.back().has_downstream);
}

TEST(PlanTest, KernelResolution) {
  PlanRequest request = basic_request();
  request.default_kernel = "row";
  request.device_kernels = {"", "antidiag", ""};
  const AlignmentPlan plan = make_plan(request);
  EXPECT_EQ(plan.devices[0].kernel, "row");
  EXPECT_EQ(plan.devices[1].kernel, "antidiag");
  EXPECT_EQ(plan.devices[2].kernel, "row");
}

TEST(PlanTest, ScheduleUnits) {
  PlanRequest request = basic_request();
  const AlignmentPlan row_major = make_plan(request);
  for (std::size_t d = 0; d < row_major.device_count(); ++d) {
    EXPECT_EQ(row_major.schedule_units(d), row_major.block_row_count);
  }

  request.schedule = Schedule::kDiagonal;
  const AlignmentPlan diagonal = make_plan(request);
  for (std::size_t d = 0; d < diagonal.device_count(); ++d) {
    EXPECT_EQ(diagonal.schedule_units(d),
              diagonal.block_row_count +
                  diagonal.devices[d].block_columns - 1);
  }
}

TEST(PlanTest, ResumeStartRow) {
  PlanRequest request = basic_request();
  request.start_block_row = 10;
  const AlignmentPlan plan = make_plan(request);
  EXPECT_EQ(plan.start_block_row, 10);
  EXPECT_EQ(plan.schedule_units(0), plan.block_row_count - 10);
}

TEST(PlanTest, RejectsBadRequests) {
  {
    PlanRequest request = basic_request();
    request.rows = 0;
    EXPECT_THROW((void)make_plan(request), InvalidArgument);
  }
  {
    PlanRequest request = basic_request();
    request.block_cols = 0;
    EXPECT_THROW((void)make_plan(request), InvalidArgument);
  }
  {
    PlanRequest request = basic_request();
    request.buffer_capacity = 0;
    EXPECT_THROW((void)make_plan(request), InvalidArgument);
  }
  {
    PlanRequest request = basic_request();
    request.weights.clear();
    EXPECT_THROW((void)make_plan(request), InvalidArgument);
  }
  {
    PlanRequest request = basic_request();
    request.device_kernels = {"row"};  // 1 kernel for 3 weights
    EXPECT_THROW((void)make_plan(request), InvalidArgument);
  }
  {
    PlanRequest request = basic_request();
    request.start_block_row = base::div_ceil(request.rows,
                                             request.block_rows);
    EXPECT_THROW((void)make_plan(request), InvalidArgument);
  }
}

TEST(PlanTest, ProfileWeightsReadSpecs) {
  const std::vector<vgpu::DeviceSpec> specs = {vgpu::toy_device(10.0),
                                               vgpu::toy_device(25.0)};
  const std::vector<double> weights = core::profile_weights(specs);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 10.0);
  EXPECT_DOUBLE_EQ(weights[1], 25.0);
}

// ---------------------------------------------------------------------------
// The shared-plan contract: the simulator accepts and executes the exact
// plan a real engine reports, and both agree on the column split.

TEST(SharedPlanTest, EnginePlanMatchesPartition) {
  std::vector<std::unique_ptr<vgpu::Device>> owned;
  owned.push_back(std::make_unique<vgpu::Device>(vgpu::toy_device(10.0)));
  owned.push_back(std::make_unique<vgpu::Device>(vgpu::toy_device(30.0)));
  core::EngineConfig config;
  config.block_rows = 64;
  config.block_cols = 64;
  core::MultiDeviceEngine engine(config,
                                 {owned[0].get(), owned[1].get()});

  const AlignmentPlan plan = engine.plan(2000, 4000);
  const std::vector<core::ColumnRange> split = engine.plan_partition(4000);
  ASSERT_EQ(plan.device_count(), split.size());
  for (std::size_t d = 0; d < split.size(); ++d) {
    EXPECT_EQ(plan.devices[d].slice, split[d]);
  }
}

TEST(SharedPlanTest, SimulatorExecutesEnginePlan) {
  const std::vector<vgpu::DeviceSpec> specs = {vgpu::toy_device(10.0),
                                               vgpu::toy_device(30.0)};
  std::vector<std::unique_ptr<vgpu::Device>> owned;
  std::vector<vgpu::Device*> pointers;
  for (const vgpu::DeviceSpec& spec : specs) {
    owned.push_back(std::make_unique<vgpu::Device>(spec));
    pointers.push_back(owned.back().get());
  }
  core::EngineConfig config;
  config.block_rows = 64;
  config.block_cols = 64;
  core::MultiDeviceEngine engine(config, pointers);
  const AlignmentPlan plan = engine.plan(2000, 4000);

  sim::SimConfig sim_config;
  sim_config.rows = 2000;
  sim_config.cols = 4000;
  sim_config.block_rows = 64;
  sim_config.block_cols = 64;
  sim_config.devices = specs;

  // The engine's plan and the simulator's own derivation must be the
  // same value: BalanceMode::kSpecGcups uses spec().sw_gcups exactly as
  // profile_weights does (no slowdown configured here).
  const sim::SimResult from_engine_plan =
      sim::simulate_pipeline(sim_config, plan);
  const sim::SimResult from_config = sim::simulate_pipeline(sim_config);
  EXPECT_EQ(from_engine_plan.makespan_ns, from_config.makespan_ns);
  EXPECT_EQ(from_engine_plan.total_cells, 2000 * 4000);
  ASSERT_EQ(from_engine_plan.devices.size(), 2u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(from_engine_plan.devices[d].slice, plan.devices[d].slice);
  }
}

TEST(SharedPlanTest, SimulatorRejectsMismatchedPlan) {
  sim::SimConfig config;
  config.rows = 1000;
  config.cols = 2000;
  config.devices = {vgpu::toy_device(10.0)};  // one device...
  PlanRequest request = basic_request();      // ...three slices
  EXPECT_THROW((void)sim::simulate_pipeline(config, make_plan(request)),
               InvalidArgument);
}

}  // namespace
}  // namespace mgpusw
