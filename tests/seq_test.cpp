#include <gtest/gtest.h>

#include <sstream>

#include "base/error.hpp"
#include "seq/alphabet.hpp"
#include "seq/fasta.hpp"
#include "seq/sequence.hpp"
#include "seq/synth.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

// ---------------------------------------------------------------------------
// alphabet

TEST(AlphabetTest, RoundTrip) {
  for (const char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(seq::to_char(seq::from_char(c)), c);
  }
  EXPECT_EQ(seq::from_char('a'), seq::Nt::A);
  EXPECT_EQ(seq::from_char('t'), seq::Nt::T);
}

TEST(AlphabetTest, Complement) {
  EXPECT_EQ(seq::complement(seq::Nt::A), seq::Nt::T);
  EXPECT_EQ(seq::complement(seq::Nt::C), seq::Nt::G);
  EXPECT_EQ(seq::complement(seq::Nt::G), seq::Nt::C);
  EXPECT_EQ(seq::complement(seq::Nt::T), seq::Nt::A);
}

TEST(AlphabetTest, StrictBaseDetection) {
  EXPECT_TRUE(seq::is_strict_base('G'));
  EXPECT_TRUE(seq::is_strict_base('c'));
  EXPECT_FALSE(seq::is_strict_base('N'));
  EXPECT_FALSE(seq::is_strict_base('-'));
  EXPECT_FALSE(seq::is_strict_base('>'));
}

TEST(AlphabetTest, AmbiguityResolutionIsDeterministicAndVaried) {
  EXPECT_EQ(seq::resolve_ambiguous(5), seq::resolve_ambiguous(5));
  // Long N-runs must not collapse to one repeated letter.
  int histogram[4] = {0, 0, 0, 0};
  for (std::uint64_t i = 0; i < 400; ++i) {
    ++histogram[static_cast<int>(seq::resolve_ambiguous(i))];
  }
  for (const int count : histogram) {
    EXPECT_GT(count, 40);
  }
}

// ---------------------------------------------------------------------------
// Sequence

TEST(SequenceTest, BuildFromStringAndAccess) {
  const seq::Sequence s("s1", "ACGTACGT");
  ASSERT_EQ(s.size(), 8);
  EXPECT_EQ(s.at(0), seq::Nt::A);
  EXPECT_EQ(s.at(3), seq::Nt::T);
  EXPECT_EQ(s.at(7), seq::Nt::T);
  EXPECT_EQ(s.to_string(), "ACGTACGT");
  EXPECT_EQ(s.ambiguous_count(), 0);
}

TEST(SequenceTest, LowercaseAccepted) {
  const seq::Sequence s("s", "acgt");
  EXPECT_EQ(s.to_string(), "ACGT");
}

TEST(SequenceTest, AmbiguousCharactersCountedAndResolved) {
  const seq::Sequence s("s", "ANNNT");
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.ambiguous_count(), 3);
  EXPECT_EQ(s.at(0), seq::Nt::A);
  EXPECT_EQ(s.at(4), seq::Nt::T);
}

TEST(SequenceTest, CrossesWordBoundaries) {
  // 2-bit packing stores 32 bases per word; check around the boundary.
  std::string bases;
  for (int i = 0; i < 100; ++i) bases.push_back("ACGT"[i % 4]);
  const seq::Sequence s("s", bases);
  ASSERT_EQ(s.size(), 100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(seq::to_char(s.at(i)), bases[static_cast<std::size_t>(i)]);
  }
}

TEST(SequenceTest, ExtractMatchesAt) {
  const seq::Sequence s = testutil::random_sequence(200, 17);
  std::vector<seq::Nt> window(50);
  s.extract(33, 50, window.data());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(window[static_cast<std::size_t>(i)], s.at(33 + i));
  }
}

TEST(SequenceTest, ExtractOutOfRangeThrows) {
  const seq::Sequence s("s", "ACGT");
  std::vector<seq::Nt> out(4);
  EXPECT_THROW(s.extract(2, 3, out.data()), InvalidArgument);
  EXPECT_THROW(s.extract(-1, 2, out.data()), InvalidArgument);
}

TEST(SequenceTest, Subsequence) {
  const seq::Sequence s("s", "ACGTACGT");
  const seq::Sequence sub = s.subsequence(2, 4);
  EXPECT_EQ(sub.to_string(), "GTAC");
}

TEST(SequenceTest, ReverseComplement) {
  const seq::Sequence s("s", "AACGT");
  EXPECT_EQ(s.reverse_complement().to_string(), "ACGTT");
  // Involution.
  EXPECT_EQ(s.reverse_complement().reverse_complement().to_string(),
            "AACGT");
}

TEST(SequenceTest, Composition) {
  const seq::Sequence s("s", "AAACCGT");
  const auto counts = s.composition();
  EXPECT_EQ(counts[0], 3);  // A
  EXPECT_EQ(counts[1], 2);  // C
  EXPECT_EQ(counts[2], 1);  // G
  EXPECT_EQ(counts[3], 1);  // T
}

TEST(SequenceTest, EqualityIgnoresName) {
  const seq::Sequence a("x", "ACGT");
  const seq::Sequence b("y", "ACGT");
  const seq::Sequence c("x", "ACGA");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SequenceTest, PackedFootprintIsQuarterByte) {
  const seq::Sequence s = testutil::random_sequence(1 << 16, 3);
  EXPECT_LE(s.packed_bytes(), (1 << 16) / 4 + 8);
}

TEST(SequenceTest, EmptySequence) {
  const seq::Sequence s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.to_string(), "");
}

// ---------------------------------------------------------------------------
// FASTA

TEST(FastaTest, ReadSingleRecord) {
  std::istringstream in(">chr1 test description\nACGT\nACGT\n");
  const auto records = seq::read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name(), "chr1");
  EXPECT_EQ(records[0].to_string(), "ACGTACGT");
}

TEST(FastaTest, ReadMultipleRecords) {
  std::istringstream in(">a\nAC\nGT\n>b\nTTTT\n>c\nG\n");
  const auto records = seq::read_fasta(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
  EXPECT_EQ(records[1].to_string(), "TTTT");
  EXPECT_EQ(records[2].to_string(), "G");
}

TEST(FastaTest, HandlesWindowsLineEndingsAndBlankLines) {
  std::istringstream in(">a\r\nAC\r\n\r\nGT\r\n");
  const auto records = seq::read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
}

TEST(FastaTest, IupacCodesResolvedDeterministically) {
  std::istringstream in1(">a\nANRYT\n");
  std::istringstream in2(">a\nANRYT\n");
  const auto r1 = seq::read_fasta(in1);
  const auto r2 = seq::read_fasta(in2);
  EXPECT_EQ(r1[0], r2[0]);
  EXPECT_EQ(r1[0].ambiguous_count(), 3);
}

TEST(FastaTest, UracilBecomesThymine) {
  std::istringstream in(">a\nAUG\n");
  const auto records = seq::read_fasta(in);
  EXPECT_EQ(records[0].to_string(), "ATG");
  EXPECT_EQ(records[0].ambiguous_count(), 0);
}

TEST(FastaTest, DataBeforeHeaderThrows) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  EXPECT_THROW(seq::read_fasta(in), IoError);
}

TEST(FastaTest, IllegalCharacterThrows) {
  std::istringstream in(">a\nAC!T\n");
  EXPECT_THROW(seq::read_fasta(in), IoError);
}

TEST(FastaTest, CommentLinesSkipped) {
  std::istringstream in(">a\n;comment\nACGT\n");
  const auto records = seq::read_fasta(in);
  EXPECT_EQ(records[0].to_string(), "ACGT");
}

TEST(FastaTest, WriteReadRoundTrip) {
  std::vector<seq::Sequence> records;
  records.push_back(testutil::random_sequence(333, 5, "first"));
  records.push_back(testutil::random_sequence(70, 6, "second"));
  std::ostringstream out;
  seq::write_fasta(out, records, 50);
  std::istringstream in(out.str());
  const auto parsed = seq::read_fasta(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], records[0]);
  EXPECT_EQ(parsed[0].name(), "first");
  EXPECT_EQ(parsed[1], records[1]);
}

TEST(FastaTest, MissingFileThrows) {
  EXPECT_THROW(seq::read_fasta_file("/nonexistent/path.fa"), IoError);
}

// ---------------------------------------------------------------------------
// synthetic genomes

TEST(SynthTest, GenerateLengthAndDeterminism) {
  const auto a = seq::generate_chromosome("c", 10'000, 42);
  const auto b = seq::generate_chromosome("c", 10'000, 42);
  const auto c = seq::generate_chromosome("c", 10'000, 43);
  EXPECT_EQ(a.size(), 10'000);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SynthTest, GcContentRespected) {
  const auto low = seq::generate_chromosome("c", 50'000, 1, 0.30);
  const auto high = seq::generate_chromosome("c", 50'000, 1, 0.60);
  auto gc = [](const seq::Sequence& s) {
    const auto counts = s.composition();
    return static_cast<double>(counts[1] + counts[2]) /
           static_cast<double>(s.size());
  };
  EXPECT_NEAR(gc(low), 0.30, 0.02);
  EXPECT_NEAR(gc(high), 0.60, 0.02);
}

TEST(SynthTest, BadGcContentThrows) {
  EXPECT_THROW(seq::generate_chromosome("c", 10, 1, 0.0), InvalidArgument);
  EXPECT_THROW(seq::generate_chromosome("c", 10, 1, 1.0), InvalidArgument);
}

TEST(SynthTest, MutateHomologDivergence) {
  const auto ancestor = seq::generate_chromosome("c", 100'000, 7);
  seq::MutationModel model;
  model.snp_rate = 0.02;
  model.indel_rate = 0.0;
  model.segment_rate = 0.0;
  seq::MutationStats stats;
  const auto homolog =
      seq::mutate_homolog(ancestor, model, 9, "homolog", &stats);
  EXPECT_EQ(homolog.size(), ancestor.size());  // no indels
  EXPECT_NEAR(stats.divergence(ancestor.size()), 0.02, 0.005);
  EXPECT_EQ(stats.insertions + stats.deletions, 0);
}

TEST(SynthTest, SubstitutionsAlwaysChangeBase) {
  const auto ancestor = seq::generate_chromosome("c", 20'000, 3);
  seq::MutationModel model;
  model.snp_rate = 1.0;  // substitute every base
  model.indel_rate = 0.0;
  model.segment_rate = 0.0;
  const auto homolog = seq::mutate_homolog(ancestor, model, 4, "h");
  for (std::int64_t i = 0; i < ancestor.size(); ++i) {
    EXPECT_NE(ancestor.at(i), homolog.at(i)) << "position " << i;
  }
}

TEST(SynthTest, IndelsChangeLength) {
  const auto ancestor = seq::generate_chromosome("c", 50'000, 5);
  seq::MutationModel model;
  model.snp_rate = 0.0;
  model.indel_rate = 0.01;
  model.segment_rate = 0.0;
  seq::MutationStats stats;
  const auto homolog =
      seq::mutate_homolog(ancestor, model, 6, "h", &stats);
  EXPECT_GT(stats.insertions + stats.deletions, 0);
  EXPECT_EQ(homolog.size(), ancestor.size() + stats.inserted_bases -
                                stats.deleted_bases);
}

TEST(SynthTest, PaperChromosomePairs) {
  const auto& pairs = seq::paper_chromosome_pairs();
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].id, "chr19");
  EXPECT_EQ(pairs[2].id, "chr21");
  EXPECT_EQ(pairs[2].human_length, 46'944'323);
  EXPECT_EQ(pairs[2].chimp_length, 32'799'110);
  for (const auto& pair : pairs) {
    EXPECT_GT(pair.matrix_cells(), 1'000'000'000'000LL);  // megabase scale
  }
}

TEST(SynthTest, ScaledPairKeepsRatio) {
  const auto pair = seq::paper_chromosome_pairs()[2];
  const auto scaled = seq::scaled_pair(pair, 1000);
  EXPECT_EQ(scaled.human_length, pair.human_length / 1000);
  EXPECT_EQ(scaled.chimp_length, pair.chimp_length / 1000);
  const auto tiny = seq::scaled_pair(pair, 1'000'000'000);
  EXPECT_EQ(tiny.human_length, 1024);  // floor
}

TEST(SynthTest, HomologPairShapesAndSimilarity) {
  const auto spec = seq::scaled_pair(seq::paper_chromosome_pairs()[2], 4096);
  const auto pair = seq::make_homolog_pair(spec, 11);
  EXPECT_EQ(pair.query.size(), spec.human_length);
  EXPECT_EQ(pair.subject.size(), spec.chimp_length);
  // The two sides share an ancestor: the leading bases should be far more
  // similar than random (~25% identity for random DNA).
  std::int64_t same = 0;
  const std::int64_t probe =
      std::min<std::int64_t>(2000, std::min(pair.query.size(),
                                            pair.subject.size()));
  for (std::int64_t i = 0; i < probe; ++i) {
    if (pair.query.at(i) == pair.subject.at(i)) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(probe), 0.6);
}

TEST(SynthTest, HomologPairDeterministic) {
  const auto spec = seq::scaled_pair(seq::paper_chromosome_pairs()[0], 8192);
  const auto a = seq::make_homolog_pair(spec, 21);
  const auto b = seq::make_homolog_pair(spec, 21);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.subject, b.subject);
}

}  // namespace
}  // namespace mgpusw
