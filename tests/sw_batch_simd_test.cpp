// The inter-sequence batch kernels (one pair per vector lane) must be
// bit-identical to the linear-memory reference on every pair — same
// score AND same end cell (both tie-breaking rules) — across mixed-length
// batches spanning multiple lane groups, empty sequences, and the full
// precision ladder (int8 -> int16 -> exact fallback on overflow).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "sw/batch_simd.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Nt;
using sw::PairView;
using sw::ScoreResult;
using sw::ScoreScheme;

/// Owns the unpacked code arrays the PairViews point into.
struct PairSet {
  std::vector<std::vector<Nt>> codes;  // 2 per pair: query, subject
  std::vector<PairView> views;

  void add(std::vector<Nt> query, std::vector<Nt> subject) {
    codes.push_back(std::move(query));
    codes.push_back(std::move(subject));
  }

  // Views are built after all pushes so vector growth cannot move data
  // out from under them.
  const std::vector<PairView>& finish() {
    views.resize(codes.size() / 2);
    for (std::size_t k = 0; k < views.size(); ++k) {
      views[k].query = codes[2 * k].data();
      views[k].query_len = static_cast<std::int64_t>(codes[2 * k].size());
      views[k].subject = codes[2 * k + 1].data();
      views[k].subject_len =
          static_cast<std::int64_t>(codes[2 * k + 1].size());
    }
    return views;
  }
};

std::vector<Nt> random_codes(std::int64_t length, std::uint64_t seed) {
  base::Rng rng(seed);
  std::vector<Nt> codes(static_cast<std::size_t>(length));
  for (auto& code : codes) code = static_cast<Nt>(rng.next_below(4));
  return codes;
}

void expect_matches_reference(const ScoreScheme& scheme,
                              const PairSet& set,
                              const std::vector<ScoreResult>& got,
                              const std::string& label) {
  ASSERT_EQ(got.size(), set.views.size()) << label;
  for (std::size_t k = 0; k < set.views.size(); ++k) {
    const ScoreResult want = sw::linear_score_unpacked(
        scheme, set.codes[2 * k], set.codes[2 * k + 1]);
    EXPECT_EQ(got[k].score, want.score) << label << " pair " << k;
    EXPECT_EQ(got[k].end.row, want.end.row) << label << " pair " << k;
    EXPECT_EQ(got[k].end.col, want.end.col) << label << " pair " << k;
  }
}

// Mixed lengths crossing every interesting boundary: empty, sub-lane,
// around the int8 segment fold (96) and well past the int16 one in cell
// count. All pairings -> far more pairs than one 32-lane group, so the
// sort + grouping and the in-order result scatter are exercised too.
PairSet mixed_length_pairs() {
  const std::vector<std::int64_t> lengths = {0,  1,  3,  8,   15, 16,
                                             17, 31, 33, 64, 100, 257};
  PairSet set;
  std::uint64_t seed = 1;
  for (const std::int64_t qlen : lengths) {
    for (const std::int64_t slen : lengths) {
      std::vector<seq::Nt> q = random_codes(qlen, seed);
      std::vector<seq::Nt> s = random_codes(slen, seed + 1);
      seed += 2;
      set.add(std::move(q), std::move(s));
    }
  }
  set.finish();
  return set;
}

TEST(BatchSimdParity, EveryKernelMatchesLinearReferenceOnMixedBatch) {
  PairSet set = mixed_length_pairs();
  for (const std::string& kernel : sw::batch_kernel_names()) {
    for (const ScoreScheme& scheme : testutil::test_schemes()) {
      sw::BatchStats stats;
      const std::vector<ScoreResult> got =
          sw::batch_align_scores(scheme, set.views, kernel, &stats);
      expect_matches_reference(scheme, set, got,
                               kernel + " scheme " +
                                   std::to_string(scheme.match));
      if (kernel != "scalar") {
        EXPECT_GT(stats.groups, 0) << kernel;
      }
    }
  }
}

TEST(BatchSimdParity, RelatedPairsWithLongMatchRuns) {
  // High-identity pairs push H far higher than random pairs do, forcing
  // the int8 tier to actually rerun on the ladder kernels.
  PairSet set;
  for (std::uint64_t k = 0; k < 40; ++k) {
    auto [a, b] = testutil::related_pair(200, 1000 + k);
    std::vector<Nt> qa(static_cast<std::size_t>(a.size()));
    std::vector<Nt> qb(static_cast<std::size_t>(b.size()));
    a.extract(0, a.size(), qa.data());
    b.extract(0, b.size(), qb.data());
    set.add(std::move(qa), std::move(qb));
  }
  set.finish();
  for (const std::string& kernel : sw::batch_kernel_names()) {
    const std::vector<ScoreResult> got = sw::batch_align_scores(
        ScoreScheme{2, -1, 1, 1}, set.views, kernel, nullptr);
    expect_matches_reference(ScoreScheme{2, -1, 1, 1}, set, got, kernel);
  }
}

TEST(BatchSimdOverflow, Int8OverflowRerunsAtInt16) {
  // Identical 100-base pairs score 200 with match=2: past int8's
  // watermark, comfortably inside int16. Every pair must be rerun once.
  PairSet set;
  for (std::uint64_t k = 0; k < 40; ++k) {
    std::vector<Nt> codes = random_codes(100, 7 * k + 3);
    set.add(codes, codes);
  }
  set.finish();
  const ScoreScheme scheme{2, -1, 1, 1};
  sw::BatchStats stats;
  const std::vector<ScoreResult> got =
      sw::batch_align_scores(scheme, set.views, "interseq", &stats);
  expect_matches_reference(scheme, set, got, "interseq");
  EXPECT_EQ(stats.overflow_reruns, 40);
  for (const ScoreResult& result : got) EXPECT_EQ(result.score, 200);
}

TEST(BatchSimdOverflow, Int16OverflowFallsBackToExact) {
  // match=8000 skips int8 entirely (scheme pre-check) and overflows
  // int16 on identical 10-base pairs (score 80000): the exact scalar
  // fallback must kick in and count one rerun per pair.
  PairSet set;
  for (std::uint64_t k = 0; k < 10; ++k) {
    std::vector<Nt> codes = random_codes(10, 11 * k + 5);
    set.add(codes, codes);
  }
  set.finish();
  const ScoreScheme scheme{8000, -3, 3, 2};
  sw::BatchStats stats;
  const std::vector<ScoreResult> got =
      sw::batch_align_scores(scheme, set.views, "interseq", &stats);
  ASSERT_EQ(got.size(), 10u);
  for (const ScoreResult& result : got) EXPECT_EQ(result.score, 80000);
  EXPECT_EQ(stats.overflow_reruns, 10);
}

TEST(BatchSimdOverflow, NoRerunsOnSmallScores) {
  PairSet set = mixed_length_pairs();
  sw::BatchStats stats;
  (void)sw::batch_align_scores(ScoreScheme{}, set.views, "interseq",
                               &stats);
  EXPECT_EQ(stats.overflow_reruns, 0);
  EXPECT_GT(stats.groups, 0);
}

TEST(BatchSimd, UnknownKernelNameThrows) {
  PairSet set;
  set.add(random_codes(8, 1), random_codes(8, 2));
  set.finish();
  EXPECT_THROW(
      (void)sw::batch_align_scores(ScoreScheme{}, set.views, "warp"),
      InvalidArgument);
}

TEST(BatchSimd, EmptyBatchIsFine) {
  sw::BatchStats stats;
  const std::vector<ScoreResult> got = sw::batch_align_scores(
      ScoreScheme{}, std::vector<PairView>{}, "interseq", &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.groups, 0);
}

}  // namespace
}  // namespace mgpusw
