#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "base/error.hpp"
#include "core/special_rows.hpp"

namespace mgpusw {
namespace {

/// Fresh spill directory under the gtest temp root.
std::string make_spill_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "srw_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(SpecialRowsTest, SaveAndAssembleSingleSegment) {
  core::SpecialRowStore store;
  store.save_segment(63, 0, {1, 2, 3, 4});
  const auto row = store.assemble_row(63, 4);
  EXPECT_EQ(row, (std::vector<sw::Score>{1, 2, 3, 4}));
}

TEST(SpecialRowsTest, SegmentsStitchInAnyOrder) {
  core::SpecialRowStore store;
  store.save_segment(10, 3, {30, 40});
  store.save_segment(10, 0, {0, 10, 20});
  store.save_segment(10, 5, {50});
  const auto row = store.assemble_row(10, 6);
  EXPECT_EQ(row, (std::vector<sw::Score>{0, 10, 20, 30, 40, 50}));
}

TEST(SpecialRowsTest, RowsSortedAndBytesTracked) {
  core::SpecialRowStore store;
  store.save_segment(7, 0, {1});
  store.save_segment(3, 0, {1, 2});
  EXPECT_EQ(store.rows(), (std::vector<std::int64_t>{3, 7}));
  EXPECT_EQ(store.bytes(),
            static_cast<std::int64_t>(3 * sizeof(sw::Score)));
  store.clear();
  EXPECT_TRUE(store.rows().empty());
  EXPECT_EQ(store.bytes(), 0);
}

TEST(SpecialRowsTest, GapDetected) {
  core::SpecialRowStore store;
  store.save_segment(5, 0, {1, 2});
  store.save_segment(5, 3, {4});  // column 2 missing
  EXPECT_THROW(store.assemble_row(5, 4), InternalError);
}

TEST(SpecialRowsTest, WrongTotalDetected) {
  core::SpecialRowStore store;
  store.save_segment(5, 0, {1, 2});
  EXPECT_THROW(store.assemble_row(5, 3), InternalError);
}

TEST(SpecialRowsTest, MissingRowDetected) {
  core::SpecialRowStore store;
  EXPECT_THROW(store.assemble_row(1, 1), InternalError);
}

TEST(SpecialRowsTest, ConcurrentSavesSafe) {
  core::SpecialRowStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int row = 0; row < 50; ++row) {
        store.save_segment(row, t * 10,
                           std::vector<sw::Score>(10, static_cast<sw::Score>(t)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int row = 0; row < 50; ++row) {
    const auto assembled = store.assemble_row(row, 40);
    EXPECT_EQ(assembled.size(), 40u);
  }
}

TEST(SpecialRowsDiskTest, RoundTripsWithChecksums) {
  core::SpecialRowStore store(make_spill_dir("roundtrip"));
  store.save_segment(15, 0, {1, 2, 3}, {-9, -9, -9});
  store.save_segment(15, 3, {4, 5}, {-9, -9});
  EXPECT_EQ(store.assemble_row(15, 5),
            (std::vector<sw::Score>{1, 2, 3, 4, 5}));
  EXPECT_EQ(store.assemble_row_f(15, 5),
            (std::vector<sw::Score>{-9, -9, -9, -9, -9}));
}

TEST(SpecialRowsDiskTest, CorruptPayloadFailsLoudly) {
  const std::string dir = make_spill_dir("corrupt");
  core::SpecialRowStore store(dir);
  store.save_segment(31, 0, {10, 20, 30, 40}, {-1, -1, -1, -1});

  // Flip one payload byte behind the store's back; the next read must
  // detect it via the record CRC instead of feeding garbage to a resume.
  const std::string path = dir + "/row_31.srw";
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(32);  // first H byte, just past the record header
    const char evil = 0x5a;
    file.write(&evil, 1);
  }
  try {
    (void)store.assemble_row(31, 4);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos);
  }
}

TEST(SpecialRowsDiskTest, TruncatedRecordFailsLoudly) {
  const std::string dir = make_spill_dir("truncated");
  core::SpecialRowStore store(dir);
  store.save_segment(63, 0, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::string path = dir + "/row_63.srw";
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 4);
  EXPECT_THROW((void)store.assemble_row(63, 8), IoError);
}

TEST(SpecialRowsTest, LastRestartableRowPicksNewestIntactCheckpoint) {
  core::SpecialRowStore store;
  store.save_segment(31, 0, {1, 2, 3, 4}, {-1, -1, -1, -1});
  store.save_segment(63, 0, {5, 6, 7, 8}, {-2, -2, -2, -2});
  // Row 95 is incomplete: the run died while device 1 was still saving.
  store.save_segment(95, 0, {9, 10}, {-3, -3});
  EXPECT_EQ(store.last_restartable_row(4), 63);
}

TEST(SpecialRowsTest, LastRestartableRowRequiresFData) {
  core::SpecialRowStore store;
  store.save_segment(31, 0, {1, 2}, {-1, -1});
  store.save_segment(63, 0, {3, 4});  // H only: alignment row, no restart
  EXPECT_EQ(store.last_restartable_row(2), 31);
}

TEST(SpecialRowsTest, LastRestartableRowRespectsLimit) {
  core::SpecialRowStore store;
  store.save_segment(31, 0, {1, 2}, {-1, -1});
  store.save_segment(63, 0, {3, 4}, {-2, -2});
  EXPECT_EQ(store.last_restartable_row(2), 63);
  EXPECT_EQ(store.last_restartable_row(2, 63), 31);
  EXPECT_EQ(store.last_restartable_row(2, 31), -1);
}

TEST(SpecialRowsTest, LastRestartableRowEmptyStoreIsMinusOne) {
  core::SpecialRowStore store;
  EXPECT_EQ(store.last_restartable_row(4), -1);
}

TEST(SpecialRowsDiskTest, LastRestartableRowSkipsCorruptRows) {
  const std::string dir = make_spill_dir("skip_corrupt");
  core::SpecialRowStore store(dir);
  store.save_segment(31, 0, {1, 2}, {-1, -1});
  store.save_segment(63, 0, {3, 4}, {-2, -2});
  {
    std::fstream file(dir + "/row_63.srw",
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(32);
    const char evil = 0x7f;
    file.write(&evil, 1);
  }
  // The newest checkpoint fails its CRC; recovery falls back to row 31.
  EXPECT_EQ(store.last_restartable_row(2), 31);
}

// --- recover_existing: reviving another process's spill files --------------

TEST(SpecialRowsDiskTest, RecoverExistingRevivesIntactRows) {
  const std::string dir = make_spill_dir("recover_intact");
  {
    core::SpecialRowStore store(dir);
    store.save_segment(31, 0, {1, 2, 3}, {-1, -1, -1});
    store.save_segment(63, 0, {4, 5}, {-2, -2});
    store.save_segment(63, 2, {6}, {-2});
  }  // the writing process "dies"; the files stay behind
  core::SpecialRowStore revived(dir);
  const auto report = revived.recover_existing();
  EXPECT_EQ(report.rows, 2);
  EXPECT_EQ(report.truncated_bytes, 0);
  EXPECT_EQ(revived.rows(), (std::vector<std::int64_t>{31, 63}));
  EXPECT_EQ(revived.assemble_row(63, 3),
            (std::vector<sw::Score>{4, 5, 6}));
  EXPECT_EQ(revived.last_restartable_row(3), 63);
}

TEST(SpecialRowsDiskTest, RecoverExistingTruncatesCorruptTail) {
  const std::string dir = make_spill_dir("recover_torn");
  {
    core::SpecialRowStore store(dir);
    store.save_segment(31, 0, {1, 2}, {-1, -1});
    store.save_segment(63, 0, {3, 4}, {-2, -2});
  }
  // Tear the newest row file mid-record, as a crash mid-write would.
  const std::string path = dir + "/row_63.srw";
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 5);
  core::SpecialRowStore revived(dir);
  const auto report = revived.recover_existing();
  EXPECT_GT(report.truncated_bytes, 0);
  // Row 31 survives untouched; the torn row 63 lost its only record,
  // so it no longer qualifies as a checkpoint.
  EXPECT_EQ(revived.last_restartable_row(2), 31);
}

TEST(SpecialRowsDiskTest, RecoverExistingOnFreshDirIsEmpty) {
  core::SpecialRowStore store(make_spill_dir("recover_fresh"));
  const auto report = store.recover_existing();
  EXPECT_EQ(report.rows, 0);
  EXPECT_EQ(report.segments, 0);
  EXPECT_EQ(report.truncated_bytes, 0);
  EXPECT_TRUE(store.rows().empty());
}

}  // namespace
}  // namespace mgpusw
