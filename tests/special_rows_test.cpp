#include <gtest/gtest.h>

#include <thread>

#include "base/error.hpp"
#include "core/special_rows.hpp"

namespace mgpusw {
namespace {

TEST(SpecialRowsTest, SaveAndAssembleSingleSegment) {
  core::SpecialRowStore store;
  store.save_segment(63, 0, {1, 2, 3, 4});
  const auto row = store.assemble_row(63, 4);
  EXPECT_EQ(row, (std::vector<sw::Score>{1, 2, 3, 4}));
}

TEST(SpecialRowsTest, SegmentsStitchInAnyOrder) {
  core::SpecialRowStore store;
  store.save_segment(10, 3, {30, 40});
  store.save_segment(10, 0, {0, 10, 20});
  store.save_segment(10, 5, {50});
  const auto row = store.assemble_row(10, 6);
  EXPECT_EQ(row, (std::vector<sw::Score>{0, 10, 20, 30, 40, 50}));
}

TEST(SpecialRowsTest, RowsSortedAndBytesTracked) {
  core::SpecialRowStore store;
  store.save_segment(7, 0, {1});
  store.save_segment(3, 0, {1, 2});
  EXPECT_EQ(store.rows(), (std::vector<std::int64_t>{3, 7}));
  EXPECT_EQ(store.bytes(),
            static_cast<std::int64_t>(3 * sizeof(sw::Score)));
  store.clear();
  EXPECT_TRUE(store.rows().empty());
  EXPECT_EQ(store.bytes(), 0);
}

TEST(SpecialRowsTest, GapDetected) {
  core::SpecialRowStore store;
  store.save_segment(5, 0, {1, 2});
  store.save_segment(5, 3, {4});  // column 2 missing
  EXPECT_THROW(store.assemble_row(5, 4), InternalError);
}

TEST(SpecialRowsTest, WrongTotalDetected) {
  core::SpecialRowStore store;
  store.save_segment(5, 0, {1, 2});
  EXPECT_THROW(store.assemble_row(5, 3), InternalError);
}

TEST(SpecialRowsTest, MissingRowDetected) {
  core::SpecialRowStore store;
  EXPECT_THROW(store.assemble_row(1, 1), InternalError);
}

TEST(SpecialRowsTest, ConcurrentSavesSafe) {
  core::SpecialRowStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int row = 0; row < 50; ++row) {
        store.save_segment(row, t * 10,
                           std::vector<sw::Score>(10, static_cast<sw::Score>(t)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int row = 0; row < 50; ++row) {
    const auto assembled = store.assemble_row(row, 40);
    EXPECT_EQ(assembled.size(), 40u);
  }
}

}  // namespace
}  // namespace mgpusw
