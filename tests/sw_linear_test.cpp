#include <gtest/gtest.h>

#include "sw/linear.hpp"
#include "sw/reference.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Sequence;
using sw::ScoreScheme;

const ScoreScheme kDefault{};

TEST(LinearScoreTest, MatchesReferenceOnSmallExample) {
  const Sequence a("a", "TTTTACGTACGTTTTT");
  const Sequence b("b", "GGACGTACGG");
  EXPECT_EQ(linear_score(kDefault, a, b),
            reference_score(kDefault, a, b));
}

TEST(LinearScoreTest, EmptyInputs) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  EXPECT_EQ(linear_score(kDefault, empty, s).score, 0);
  EXPECT_EQ(linear_score(kDefault, s, empty).score, 0);
}

TEST(LinearScoreTest, SelfComparisonScoresFullLength) {
  const Sequence s = testutil::random_sequence(500, 3);
  const auto result = linear_score(kDefault, s, s);
  EXPECT_EQ(result.score, 500);
  EXPECT_EQ(result.end.row, 499);
  EXPECT_EQ(result.end.col, 499);
}

// Property: linear scan == full-matrix reference (score AND end cell)
// across schemes, random and related pairs, including shape extremes.
class LinearVsReference
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LinearVsReference, RandomPairs) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  const auto a = testutil::random_sequence(
      100 + seed * 13, static_cast<std::uint64_t>(seed) * 2 + 1);
  const auto b = testutil::random_sequence(
      80 + seed * 7, static_cast<std::uint64_t>(seed) * 2 + 2);
  EXPECT_EQ(linear_score(scheme, a, b), reference_score(scheme, a, b));
}

TEST_P(LinearVsReference, RelatedPairs) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  auto [a, b] = testutil::related_pair(150 + seed * 11,
                                       static_cast<std::uint64_t>(seed));
  EXPECT_EQ(linear_score(scheme, a, b), reference_score(scheme, a, b));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, LinearVsReference,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 10)));

// Extreme shapes: 1xN, Nx1, 1x1.
TEST(LinearScoreTest, DegenerateShapes) {
  for (const ScoreScheme& scheme : testutil::test_schemes()) {
    const Sequence one("one", "G");
    const Sequence many = testutil::random_sequence(64, 9);
    EXPECT_EQ(linear_score(scheme, one, many),
              reference_score(scheme, one, many));
    EXPECT_EQ(linear_score(scheme, many, one),
              reference_score(scheme, many, one));
    EXPECT_EQ(linear_score(scheme, one, one),
              reference_score(scheme, one, one));
  }
}

// ---------------------------------------------------------------------------
// find_alignment_start (stage 2)

TEST(FindStartTest, PerfectMatchStartsAtZero) {
  const Sequence s("s", "ACGTACGTAC");
  const auto stage1 = linear_score(kDefault, s, s);
  const auto start = find_alignment_start(kDefault, s, s, stage1);
  EXPECT_EQ(start.row, 0);
  EXPECT_EQ(start.col, 0);
}

TEST(FindStartTest, EmbeddedMatch) {
  const Sequence a("a", "TTTTTACGTACGTT");
  const Sequence b("b", "GGGACGTACGGG");
  const auto stage1 = linear_score(kDefault, a, b);
  const auto start = find_alignment_start(kDefault, a, b, stage1);
  // The common substring ACGTACG begins at a[5], b[3].
  EXPECT_EQ(start.row, 5);
  EXPECT_EQ(start.col, 3);
}

TEST(FindStartTest, StartMatchesReferenceTraceback) {
  for (int seed = 0; seed < 10; ++seed) {
    auto [a, b] =
        testutil::related_pair(120, static_cast<std::uint64_t>(seed) + 50);
    const auto stage1 = linear_score(kDefault, a, b);
    if (stage1.score == 0) continue;
    const auto start = find_alignment_start(kDefault, a, b, stage1);
    // The reverse scan picks the longest optimal alignment ending at the
    // stage-1 cell; the traceback may pick a shorter co-optimal one, so
    // compare scores by re-aligning the claimed region globally instead
    // of comparing positions. The claimed region must reproduce the full
    // optimal score.
    const auto q = a.subsequence(start.row, stage1.end.row - start.row + 1);
    const auto s = b.subsequence(start.col, stage1.end.col - start.col + 1);
    EXPECT_EQ(reference_global_score(kDefault, q, s), stage1.score)
        << "seed " << seed;
  }
}

TEST(FindStartTest, RejectsEmptyResult) {
  const Sequence a("a", "AAAA");
  const Sequence b("b", "TTTT");
  const auto stage1 = linear_score(kDefault, a, b);
  EXPECT_THROW((void)find_alignment_start(kDefault, a, b, stage1),
               InvalidArgument);
}

}  // namespace
}  // namespace mgpusw
