// Every kernel in the registry must be bit-identical to the row-scan
// reference: same block best (including both tie-breaking rules), same
// borders out, same border_max — across geometries that exercise the SIMD
// kernel's delegated small shapes, its scalar fill/drain edges, full
// 8-row strips and the non-lane-multiple remainder path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sw/block.hpp"
#include "sw/block_simd.hpp"
#include "sw/kernel.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Nt;
using sw::BlockArgs;
using sw::Score;
using sw::ScoreScheme;

struct KernelIo {
  std::vector<Score> row_h, row_f, col_h, col_e;
  sw::BlockResult result;
};

KernelIo run_kernel(sw::BlockKernelFn fn, const ScoreScheme& scheme,
                    const std::vector<Nt>& query,
                    const std::vector<Nt>& subject, Score corner) {
  KernelIo io;
  const auto rows = static_cast<std::int64_t>(query.size());
  const auto cols = static_cast<std::int64_t>(subject.size());
  // Non-trivial borders: pseudo-random non-negative H, mixed E/F.
  io.row_h.resize(static_cast<std::size_t>(cols));
  io.row_f.resize(static_cast<std::size_t>(cols));
  io.col_h.resize(static_cast<std::size_t>(rows));
  io.col_e.resize(static_cast<std::size_t>(rows));
  for (std::int64_t j = 0; j < cols; ++j) {
    io.row_h[static_cast<std::size_t>(j)] = static_cast<Score>((j * 7) % 13);
    io.row_f[static_cast<std::size_t>(j)] =
        j % 3 == 0 ? sw::kNegInf : static_cast<Score>((j * 5) % 11 - 8);
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    io.col_h[static_cast<std::size_t>(i)] = static_cast<Score>((i * 3) % 17);
    io.col_e[static_cast<std::size_t>(i)] =
        i % 4 == 0 ? sw::kNegInf : static_cast<Score>((i * 9) % 7 - 6);
  }

  BlockArgs args;
  args.query = query.data();
  args.subject = subject.data();
  args.rows = rows;
  args.cols = cols;
  args.global_row = 1000;
  args.global_col = 2000;
  args.corner_h = corner;
  args.top_h = io.row_h.data();
  args.top_f = io.row_f.data();
  args.left_h = io.col_h.data();
  args.left_e = io.col_e.data();
  args.bottom_h = io.row_h.data();
  args.bottom_f = io.row_f.data();
  args.right_h = io.col_h.data();
  args.right_e = io.col_e.data();
  io.result = fn(scheme, args);
  return io;
}

class KernelParity
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KernelParity, AllRegisteredKernelsMatchRowScan) {
  const auto [rows, cols, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(seed) % testutil::test_schemes().size()];
  std::vector<Nt> query(static_cast<std::size_t>(rows));
  std::vector<Nt> subject(static_cast<std::size_t>(cols));
  base::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  for (auto& nt : query) nt = static_cast<Nt>(rng.next_below(4));
  for (auto& nt : subject) nt = static_cast<Nt>(rng.next_below(4));

  const KernelIo scan =
      run_kernel(&sw::compute_block, scheme, query, subject, 3);
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    const KernelIo other = run_kernel(info.fn, scheme, query, subject, 3);
    EXPECT_EQ(other.result.best, scan.result.best) << info.name;
    EXPECT_EQ(other.result.border_max, scan.result.border_max) << info.name;
    EXPECT_EQ(other.row_h, scan.row_h) << info.name;
    EXPECT_EQ(other.row_f, scan.row_f) << info.name;
    EXPECT_EQ(other.col_h, scan.col_h) << info.name;
    EXPECT_EQ(other.col_e, scan.col_e) << info.name;
  }
}

// Rows hit: degenerate (1, 2), below the 8-lane strip (7), one full strip
// (8), strip + remainder (9, 33), several strips (64). Cols hit: the
// simd kernel's small-block delegation (< 16), drain-only widths (16,
// 17), steady-state widths (33, 65, 128).
INSTANTIATE_TEST_SUITE_P(
    Geometries, KernelParity,
    ::testing::Combine(::testing::Values(1, 2, 7, 8, 9, 33, 64),
                       ::testing::Values(1, 13, 16, 17, 33, 65, 128),
                       ::testing::Range(0, 5)));

TEST(KernelRegistryTest, RowIsDefaultAndFirst) {
  const auto& registry = sw::kernel_registry();
  ASSERT_FALSE(registry.empty());
  EXPECT_EQ(registry.front().name, sw::kDefaultKernel);
  EXPECT_EQ(registry.front().fn, &sw::compute_block);
}

TEST(KernelRegistryTest, FindKernelResolvesEveryEntry) {
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    EXPECT_EQ(sw::find_kernel(info.name), info.fn) << info.name;
  }
}

TEST(KernelRegistryTest, FindKernelRejectsUnknownName) {
  EXPECT_THROW((void)sw::find_kernel("warp-shuffle"), InvalidArgument);
}

TEST(KernelRegistryTest, SimdScalarBackendAlwaysRegistered) {
  // The pinned scalar backend is the guaranteed-runnable fallback; it must
  // be present so the fallback path is parity-tested on every host.
  EXPECT_NO_THROW((void)sw::find_kernel("simd-scalar"));
  EXPECT_TRUE(sw::simd_backend_runnable(sw::SimdIsa::kScalar));
}

TEST(KernelRegistryTest, DispatchedBackendMatchesDetectedIsa) {
  // The dispatcher may never pick a backend above the detected ISA level.
  const std::string active = sw::active_simd_backend();
  const sw::SimdIsa detected = sw::detected_simd_isa();
  if (active == "avx2") {
    EXPECT_GE(detected, sw::SimdIsa::kAvx2);
  }
  if (active == "sse4.2") {
    EXPECT_GE(detected, sw::SimdIsa::kSse42);
  }
}

}  // namespace
}  // namespace mgpusw
