// Every kernel in the registry must be bit-identical to the row-scan
// reference: same block best (including both tie-breaking rules), same
// borders out, same border_max — across geometries that exercise the SIMD
// kernel's delegated small shapes, its scalar fill/drain edges, full
// 8-row strips and the non-lane-multiple remainder path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sw/block.hpp"
#include "sw/block_simd.hpp"
#include "sw/block_simd_lp.hpp"
#include "sw/kernel.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Nt;
using sw::BlockArgs;
using sw::Score;
using sw::ScoreScheme;

struct KernelIo {
  std::vector<Score> row_h, row_f, col_h, col_e;
  sw::BlockResult result;
};

KernelIo run_kernel(sw::BlockKernelFn fn, const ScoreScheme& scheme,
                    const std::vector<Nt>& query,
                    const std::vector<Nt>& subject, Score corner,
                    Score border_base = 0) {
  KernelIo io;
  const auto rows = static_cast<std::int64_t>(query.size());
  const auto cols = static_cast<std::int64_t>(subject.size());
  // Non-trivial borders: pseudo-random non-negative H, mixed E/F.
  // border_base shifts the H borders upward — chosen by the overflow
  // tests to push them past a narrow type's representable range.
  io.row_h.resize(static_cast<std::size_t>(cols));
  io.row_f.resize(static_cast<std::size_t>(cols));
  io.col_h.resize(static_cast<std::size_t>(rows));
  io.col_e.resize(static_cast<std::size_t>(rows));
  for (std::int64_t j = 0; j < cols; ++j) {
    io.row_h[static_cast<std::size_t>(j)] =
        border_base + static_cast<Score>((j * 7) % 13);
    io.row_f[static_cast<std::size_t>(j)] =
        j % 3 == 0 ? sw::kNegInf : static_cast<Score>((j * 5) % 11 - 8);
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    io.col_h[static_cast<std::size_t>(i)] =
        border_base + static_cast<Score>((i * 3) % 17);
    io.col_e[static_cast<std::size_t>(i)] =
        i % 4 == 0 ? sw::kNegInf : static_cast<Score>((i * 9) % 7 - 6);
  }

  BlockArgs args;
  args.query = query.data();
  args.subject = subject.data();
  args.rows = rows;
  args.cols = cols;
  args.global_row = 1000;
  args.global_col = 2000;
  args.corner_h = corner;
  args.top_h = io.row_h.data();
  args.top_f = io.row_f.data();
  args.left_h = io.col_h.data();
  args.left_e = io.col_e.data();
  args.bottom_h = io.row_h.data();
  args.bottom_f = io.row_f.data();
  args.right_h = io.col_h.data();
  args.right_e = io.col_e.data();
  io.result = fn(scheme, args);
  return io;
}

class KernelParity
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KernelParity, AllRegisteredKernelsMatchRowScan) {
  const auto [rows, cols, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(seed) % testutil::test_schemes().size()];
  std::vector<Nt> query(static_cast<std::size_t>(rows));
  std::vector<Nt> subject(static_cast<std::size_t>(cols));
  base::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  for (auto& nt : query) nt = static_cast<Nt>(rng.next_below(4));
  for (auto& nt : subject) nt = static_cast<Nt>(rng.next_below(4));

  const KernelIo scan =
      run_kernel(&sw::compute_block, scheme, query, subject, 3);
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    const KernelIo other = run_kernel(info.fn, scheme, query, subject, 3);
    EXPECT_EQ(other.result.best, scan.result.best) << info.name;
    EXPECT_EQ(other.result.border_max, scan.result.border_max) << info.name;
    EXPECT_EQ(other.row_h, scan.row_h) << info.name;
    EXPECT_EQ(other.row_f, scan.row_f) << info.name;
    EXPECT_EQ(other.col_h, scan.col_h) << info.name;
    EXPECT_EQ(other.col_e, scan.col_e) << info.name;
  }
}

// Rows hit: degenerate (1, 2), below the 8-lane strip (7), one full strip
// (8), strip + remainder (9, 33), several strips (64), a pipelined strip
// pair plus an odd trailing strip for every lane count (49 covers the
// 16-lane kernels, 96 the 32-lane int8 kernel). Cols hit: the simd
// kernel's small-block delegation (< 16), drain-only widths (16, 17),
// steady-state widths (33, 65, 128), and a non-power width past every
// kernel's 4*kLanes pair-pipelining threshold (200).
INSTANTIATE_TEST_SUITE_P(
    Geometries, KernelParity,
    ::testing::Combine(::testing::Values(1, 2, 7, 8, 9, 33, 49, 64, 96),
                       ::testing::Values(1, 13, 16, 17, 33, 65, 128, 200),
                       ::testing::Range(0, 5)));

// --- precision-ladder escalation ------------------------------------
//
// Each case forces a specific rung of the int8 -> int16 -> int32 ladder
// to fail — by saturation at runtime (large match on a perfect-match
// input) or by the border pre-check (H borders beyond the lane range) —
// and checks (a) every registered kernel still matches the row scan
// bit-for-bit, borders and tie-breaking included, and (b) the ladder
// kernels report the expected overflow_reruns count.

/// Runs every registry kernel against compute_block on one overflow-rig
/// input; returns the ladder kernels' rerun counts by name.
std::pair<int, int> check_overflow_parity(const ScoreScheme& scheme,
                                          const std::vector<Nt>& query,
                                          const std::vector<Nt>& subject,
                                          Score corner, Score border_base) {
  const KernelIo scan = run_kernel(&sw::compute_block, scheme, query,
                                   subject, corner, border_base);
  int reruns16 = -1;
  int reruns8 = -1;
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    const KernelIo other =
        run_kernel(info.fn, scheme, query, subject, corner, border_base);
    EXPECT_EQ(other.result.best, scan.result.best) << info.name;
    EXPECT_EQ(other.result.border_max, scan.result.border_max) << info.name;
    EXPECT_EQ(other.row_h, scan.row_h) << info.name;
    EXPECT_EQ(other.row_f, scan.row_f) << info.name;
    EXPECT_EQ(other.col_h, scan.col_h) << info.name;
    EXPECT_EQ(other.col_e, scan.col_e) << info.name;
    if (info.name == "simd16") reruns16 = other.result.overflow_reruns;
    if (info.name == "simd8") reruns8 = other.result.overflow_reruns;
  }
  EXPECT_GE(reruns16, 0) << "simd16 not registered";
  EXPECT_GE(reruns8, 0) << "simd8 not registered";
  return {reruns16, reruns8};
}

/// A pair with a long perfect-match run: H climbs by `match` per
/// diagonal step, the overflow rig for runtime saturation.
std::pair<std::vector<Nt>, std::vector<Nt>> perfect_match_pair(int rows,
                                                               int cols) {
  std::vector<Nt> query(static_cast<std::size_t>(rows));
  std::vector<Nt> subject(static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < query.size(); ++i) {
    query[i] = static_cast<Nt>(i % 4);
  }
  for (std::size_t j = 0; j < subject.size(); ++j) {
    subject[j] = static_cast<Nt>(j % 4);
  }
  return {query, subject};
}

TEST(KernelOverflowTest, Int8SaturationEscalatesToInt16) {
  // match = 25 passes the int8 pre-check (cap 31) but a 64x128
  // perfect-match block drives H far past the int8 watermark (102), so
  // the int8 pass must detect saturation and re-run; int16 absorbs it.
  const ScoreScheme scheme{25, -2, 2, 1};
  const auto [query, subject] = perfect_match_pair(64, 128);
  const auto [reruns16, reruns8] =
      check_overflow_parity(scheme, query, subject, 3, 0);
  EXPECT_EQ(reruns16, 0);
  EXPECT_EQ(reruns8, 1);
}

TEST(KernelOverflowTest, Int16SaturationEscalatesToInt32) {
  // match = 8000 fails the int8 pre-check outright (cap 31) and drives
  // H past the int16 watermark at runtime: simd8 escalates twice,
  // simd16 once, and everything stays bit-identical in int32.
  const ScoreScheme scheme{8000, -3, 3, 2};
  const auto [query, subject] = perfect_match_pair(64, 128);
  const auto [reruns16, reruns8] =
      check_overflow_parity(scheme, query, subject, 3, 0);
  EXPECT_EQ(reruns16, 1);
  EXPECT_EQ(reruns8, 2);
}

TEST(KernelOverflowTest, Int8BorderPrecheckEscalates) {
  // Border H values around 200 are not int8-representable: the int8
  // pass must escalate before computing anything; int16 handles it.
  const ScoreScheme scheme{2, -1, 1, 1};
  const auto [query, subject] = perfect_match_pair(33, 65);
  const auto [reruns16, reruns8] =
      check_overflow_parity(scheme, query, subject, 203, 200);
  EXPECT_EQ(reruns16, 0);
  EXPECT_EQ(reruns8, 1);
}

TEST(KernelOverflowTest, Int16BorderPrecheckEscalates) {
  // Border H values around 50000 exceed int16: both narrow rungs bail
  // in their pre-checks and the int32 kernel computes the block.
  const ScoreScheme scheme{2, -1, 1, 1};
  const auto [query, subject] = perfect_match_pair(33, 65);
  const auto [reruns16, reruns8] =
      check_overflow_parity(scheme, query, subject, 50003, 50000);
  EXPECT_EQ(reruns16, 1);
  EXPECT_EQ(reruns8, 2);
}

TEST(KernelOverflowTest, NoEscalationOnSmallScores) {
  // The control: a default-scheme random block stays narrow end to end.
  const ScoreScheme scheme{1, -3, 3, 2};
  std::vector<Nt> query(64);
  std::vector<Nt> subject(128);
  base::Rng rng(11);
  for (auto& nt : query) nt = static_cast<Nt>(rng.next_below(4));
  for (auto& nt : subject) nt = static_cast<Nt>(rng.next_below(4));
  const auto [reruns16, reruns8] =
      check_overflow_parity(scheme, query, subject, 3, 0);
  EXPECT_EQ(reruns16, 0);
  EXPECT_EQ(reruns8, 0);
}

TEST(KernelRegistryTest, RowIsDefaultAndFirst) {
  const auto& registry = sw::kernel_registry();
  ASSERT_FALSE(registry.empty());
  EXPECT_EQ(registry.front().name, sw::kDefaultKernel);
  EXPECT_EQ(registry.front().fn, &sw::compute_block);
}

TEST(KernelRegistryTest, FindKernelResolvesEveryEntry) {
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    EXPECT_EQ(sw::find_kernel(info.name), info.fn) << info.name;
  }
}

TEST(KernelRegistryTest, FindKernelRejectsUnknownName) {
  EXPECT_THROW((void)sw::find_kernel("warp-shuffle"), InvalidArgument);
}

TEST(KernelRegistryTest, SimdScalarBackendAlwaysRegistered) {
  // The pinned scalar backend is the guaranteed-runnable fallback; it must
  // be present so the fallback path is parity-tested on every host.
  EXPECT_NO_THROW((void)sw::find_kernel("simd-scalar"));
  EXPECT_TRUE(sw::simd_backend_runnable(sw::SimdIsa::kScalar));
}

TEST(KernelRegistryTest, AutoSelectsNarrowestSafePrecision) {
  // "auto" is how DeviceSpec::kernel / calibration name the full ladder
  // without committing to a width; it must resolve and be the same
  // function as the int8 ladder.
  EXPECT_EQ(sw::find_kernel("auto"), &sw::compute_block_auto);
  EXPECT_EQ(sw::find_kernel("simd8"), &sw::compute_block_i8);
  EXPECT_EQ(sw::find_kernel("simd16"), &sw::compute_block_i16);
}

TEST(KernelRegistryTest, EveryRegisteredKernelHasParityCoverage) {
  // The parity sweep and the overflow tests above iterate the whole
  // registry, so a kernel is covered the moment it registers — but only
  // if the author re-ran this suite. This list is the acknowledgement:
  // registering a kernel without adding it here (and thus without
  // thinking about its parity/overflow coverage) fails the build.
  const std::vector<std::string> covered = {
      "row",          "antidiag",      "strip4",
      "simd",         "simd16",        "simd8",
      "auto",         "simd-avx2",     "simd-sse42",
      "simd-scalar",  "simd16-avx2",   "simd16-sse42",
      "simd16-scalar", "simd8-avx2",   "simd8-sse42",
      "simd8-scalar"};
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), info.name),
              covered.end())
        << "kernel '" << info.name
        << "' registered without parity coverage — add it to "
           "tests/sw_kernel_parity_test.cpp";
  }
}

TEST(KernelRegistryTest, DispatchedBackendMatchesDetectedIsa) {
  // The dispatcher may never pick a backend above the detected ISA level.
  const std::string active = sw::active_simd_backend();
  const sw::SimdIsa detected = sw::detected_simd_isa();
  if (active == "avx2") {
    EXPECT_GE(detected, sw::SimdIsa::kAvx2);
  }
  if (active == "sse4.2") {
    EXPECT_GE(detected, sw::SimdIsa::kSse42);
  }
}

}  // namespace
}  // namespace mgpusw
