#include <gtest/gtest.h>

#include "core/report.hpp"
#include "sim/pipeline_sim.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

/// Structural sanity: balanced braces/brackets, no raw control chars.
void expect_wellformed(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t k = 0; k < json.size(); ++k) {
    const char c = json[k];
    if (in_string) {
      if (c == '\\') {
        ++k;
      } else if (c == '"') {
        in_string = false;
      } else {
        EXPECT_GE(static_cast<unsigned char>(c), 0x20)
            << "raw control char at " << k;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportTest, EngineResultJson) {
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(20.0));
  core::EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  core::MultiDeviceEngine engine(config, {&d0, &d1});
  auto [a, b] = testutil::related_pair(300, 300);
  const auto result = engine.run(a, b);

  const std::string json = core::to_json(result);
  expect_wellformed(json);
  EXPECT_NE(json.find("\"score\": " + std::to_string(result.best.score)),
            std::string::npos);
  EXPECT_NE(json.find("\"devices\": ["), std::string::npos);
  EXPECT_NE(json.find("toy-"), std::string::npos);
  EXPECT_NE(json.find("\"chunks_sent\""), std::string::npos);
}

TEST(ReportTest, SimResultJson) {
  sim::SimConfig config;
  config.rows = config.cols = 1 << 18;
  config.block_rows = config.block_cols = 4096;
  config.devices = vgpu::environment1();
  const auto result = sim::simulate_pipeline(config);

  const std::string json = core::to_json(result);
  expect_wellformed(json);
  EXPECT_NE(json.find("\"makespan_ns\""), std::string::npos);
  EXPECT_NE(json.find("GTX 580"), std::string::npos);
  EXPECT_NE(json.find("\"finish_ns\""), std::string::npos);
}

TEST(ReportTest, EscapesSpecialCharacters) {
  sim::SimResult result;
  sim::SimDeviceStats stats;
  stats.device_name = "weird\"name\\with\nnewline";
  result.devices.push_back(stats);
  const std::string json = core::to_json(result);
  expect_wellformed(json);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnewline"),
            std::string::npos);
}

}  // namespace
}  // namespace mgpusw
