// Batch scheduler tests: the central property is that running a batch
// concurrently (any devices_per_item / max_in_flight split) produces
// bit-identical per-item results to the sequential legacy path — the
// engine's reduction is a total order, so per-item scores cannot depend
// on how the fleet was shared.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "core/batch.hpp"
#include "core/fleet.hpp"
#include "obs/metrics.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::BatchConfig;
using core::BatchItem;
using core::BatchResult;
using core::DeviceFleet;
using core::EngineConfig;
using core::Schedule;
using core::Transport;

std::vector<BatchItem> test_items() {
  std::vector<BatchItem> items;
  for (int i = 0; i < 4; ++i) {
    auto [a, b] = testutil::related_pair(260 + 40 * i, 40 + i);
    items.push_back(BatchItem{"pair-" + std::to_string(i), a, b});
  }
  return items;
}

EngineConfig small_config() {
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.buffer_capacity = 4;
  return config;
}

void expect_identical(const BatchResult& actual,
                      const BatchResult& expected) {
  ASSERT_EQ(actual.items.size(), expected.items.size());
  for (std::size_t i = 0; i < actual.items.size(); ++i) {
    EXPECT_EQ(actual.items[i].label, expected.items[i].label);
    EXPECT_EQ(actual.items[i].result.best, expected.items[i].result.best)
        << "item " << actual.items[i].label;
    EXPECT_EQ(actual.items[i].result.matrix_cells,
              expected.items[i].result.matrix_cells);
    EXPECT_EQ(actual.items[i].result.computed_cells,
              expected.items[i].result.computed_cells);
  }
  EXPECT_EQ(actual.total_cells, expected.total_cells);
}

TEST(BatchPropertyTest, ConcurrentMatchesSequential) {
  const std::vector<BatchItem> items = test_items();
  for (int device_count = 1; device_count <= 4; ++device_count) {
    std::vector<vgpu::DeviceSpec> specs;
    for (int d = 0; d < device_count; ++d) {
      specs.push_back(vgpu::toy_device(10.0 + 5.0 * d));
    }
    for (const Transport transport :
         {Transport::kInProcess, Transport::kTcp}) {
      for (const Schedule schedule :
           {Schedule::kRowMajor, Schedule::kDiagonal}) {
        EngineConfig engine = small_config();
        engine.transport = transport;
        engine.schedule = schedule;

        DeviceFleet sequential_fleet = DeviceFleet::from_specs(specs);
        BatchConfig sequential;
        sequential.engine = engine;
        sequential.devices_per_item = 0;  // whole fleet per item
        sequential.max_in_flight = 1;
        const BatchResult baseline =
            run_batch(sequential, sequential_fleet, items);

        // Concurrent: one device per item, everything in flight at once.
        DeviceFleet concurrent_fleet = DeviceFleet::from_specs(specs);
        BatchConfig concurrent;
        concurrent.engine = engine;
        concurrent.devices_per_item = 1;
        concurrent.max_in_flight = 4;
        const BatchResult narrow =
            run_batch(concurrent, concurrent_fleet, items);
        expect_identical(narrow, baseline);

        if (device_count >= 2) {
          // Concurrent with multi-device leases.
          DeviceFleet wide_fleet = DeviceFleet::from_specs(specs);
          BatchConfig wide;
          wide.engine = engine;
          wide.devices_per_item = 2;
          wide.max_in_flight = 2;
          const BatchResult paired = run_batch(wide, wide_fleet, items);
          expect_identical(paired, baseline);
        }
      }
    }
  }
}

TEST(BatchTest, LegacyOverloadMatchesFleetPath) {
  const std::vector<BatchItem> items = test_items();
  std::vector<std::unique_ptr<vgpu::Device>> owned;
  std::vector<vgpu::Device*> pointers;
  for (int d = 0; d < 2; ++d) {
    owned.push_back(
        std::make_unique<vgpu::Device>(vgpu::toy_device(10.0)));
    pointers.push_back(owned.back().get());
  }
  const BatchResult legacy = run_batch(small_config(), pointers, items);
  EXPECT_GT(legacy.wall_seconds, 0.0);
  EXPECT_GT(legacy.total_seconds, 0.0);
  EXPECT_GT(legacy.gcups(), 0.0);
  EXPECT_GT(legacy.summed_gcups(), 0.0);

  DeviceFleet fleet(pointers);
  BatchConfig config;
  config.engine = small_config();
  const BatchResult direct = run_batch(config, fleet, items);
  expect_identical(direct, legacy);
}

TEST(BatchTest, JobLabelThreadedThroughProgress) {
  const std::vector<BatchItem> items = test_items();
  std::mutex mu;
  std::set<std::string> jobs_seen;

  DeviceFleet fleet = DeviceFleet::from_specs(
      {vgpu::toy_device(10.0), vgpu::toy_device(10.0)});
  BatchConfig config;
  config.engine = small_config();
  config.engine.progress = [&](const core::ProgressEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    jobs_seen.insert(event.job);
  };
  config.devices_per_item = 1;
  config.max_in_flight = 2;
  (void)run_batch(config, fleet, items);

  for (const BatchItem& item : items) {
    EXPECT_TRUE(jobs_seen.count(item.label))
        << "no progress event carried job " << item.label;
  }
  EXPECT_FALSE(jobs_seen.count(""));
}

TEST(BatchTest, WallTimeMeasuresTheBatch) {
  const std::vector<BatchItem> items = test_items();
  DeviceFleet fleet = DeviceFleet::from_specs({vgpu::toy_device(10.0)});
  BatchConfig config;
  config.engine = small_config();
  const BatchResult result = run_batch(config, fleet, items);
  EXPECT_GT(result.wall_seconds, 0.0);
  // Sequential execution: the batch wall clock covers every item's run.
  EXPECT_GE(result.wall_seconds, result.total_seconds * 0.5);
}

TEST(BatchTest, RejectsBadConfigs) {
  const std::vector<BatchItem> items = test_items();
  DeviceFleet fleet = DeviceFleet::from_specs({vgpu::toy_device(10.0)});
  {
    BatchConfig config;
    config.engine = small_config();
    EXPECT_THROW((void)run_batch(config, fleet, {}), InvalidArgument);
  }
  {
    BatchConfig config;
    config.engine = small_config();
    config.max_in_flight = 0;
    EXPECT_THROW((void)run_batch(config, fleet, items), InvalidArgument);
  }
  {
    BatchConfig config;
    config.engine = small_config();
    config.devices_per_item = 2;  // fleet has one device
    EXPECT_THROW((void)run_batch(config, fleet, items), InvalidArgument);
  }
}

TEST(BatchTest, InterseqPrepassMatchesEnginePath) {
  // Mixed batch: two short pairs (eligible for the inter-sequence SIMD
  // pre-pass) and two long ones (engine path). Scores and end cells must
  // be identical to a run with the pre-pass off, the short items must
  // report the batch kernel's name, and the metrics must attribute them
  // to the pre-pass.
  std::vector<BatchItem> items;
  for (int i = 0; i < 2; ++i) {
    auto [a, b] = testutil::related_pair(120 + 30 * i, 90 + i);
    items.push_back(BatchItem{"short-" + std::to_string(i), a, b});
  }
  for (int i = 0; i < 2; ++i) {
    auto [a, b] = testutil::related_pair(400 + 50 * i, 95 + i);
    items.push_back(BatchItem{"long-" + std::to_string(i), a, b});
  }

  DeviceFleet plain_fleet = DeviceFleet::from_specs(
      {vgpu::toy_device(10.0), vgpu::toy_device(15.0)});
  BatchConfig plain;
  plain.engine = small_config();
  const BatchResult baseline = run_batch(plain, plain_fleet, items);

  obs::MetricsRegistry metrics;
  DeviceFleet prepass_fleet = DeviceFleet::from_specs(
      {vgpu::toy_device(10.0), vgpu::toy_device(15.0)});
  BatchConfig prepass;
  prepass.engine = small_config();
  prepass.engine.obs.metrics = &metrics;
  prepass.interseq_max_len = 200;
  const BatchResult mixed = run_batch(prepass, prepass_fleet, items);

  expect_identical(mixed, baseline);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const bool is_short = i < 2;
    EXPECT_EQ(mixed.items[i].result.kernel,
              is_short ? "interseq" : plain.engine.kernel)
        << items[i].label;
    EXPECT_GT(mixed.items[i].result.wall_seconds, 0.0);
  }
  EXPECT_EQ(metrics.counter_value("batch.interseq_items"), 2);
  EXPECT_EQ(metrics.counter_value("batch.items_completed"), 4);
}

TEST(BatchTest, InterseqPrepassCanHandleWholeBatch) {
  // Every item short enough: the device workers find nothing to do and
  // the batch still completes with exact results.
  std::vector<BatchItem> items;
  for (int i = 0; i < 5; ++i) {
    auto [a, b] = testutil::related_pair(80 + 10 * i, 70 + i);
    items.push_back(BatchItem{"p" + std::to_string(i), a, b});
  }
  DeviceFleet fleet = DeviceFleet::from_specs({vgpu::toy_device(10.0)});
  BatchConfig config;
  config.engine = small_config();
  config.interseq_max_len = 1000;
  const BatchResult result = run_batch(config, fleet, items);
  ASSERT_EQ(result.items.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(result.items[i].result.best,
              sw::linear_score(config.engine.scheme, items[i].query,
                               items[i].subject))
        << items[i].label;
    EXPECT_EQ(result.items[i].result.kernel, "interseq");
  }
  EXPECT_GT(result.total_cells, 0);
}

TEST(BatchTest, ItemFailureAbortsBatch) {
  // A failing item rethrows from run_batch and releases its lease.
  std::vector<BatchItem> items = test_items();
  items[2].query = seq::Sequence{};  // engine rejects empty sequences
  DeviceFleet fleet = DeviceFleet::from_specs(
      {vgpu::toy_device(10.0), vgpu::toy_device(10.0)});
  BatchConfig config;
  config.engine = small_config();
  config.devices_per_item = 1;
  config.max_in_flight = 2;
  EXPECT_THROW((void)run_batch(config, fleet, items), Error);
  EXPECT_EQ(fleet.available(), 2u);
}

}  // namespace
}  // namespace mgpusw
