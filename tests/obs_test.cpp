// Observability subsystem: tracer/span semantics, metrics instruments,
// Chrome-trace export validity (checked with the repo's own JSON
// parser), the phase profiler, and an end-to-end assertion that a
// two-device engine run's per-phase times partition its wall time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "base/json.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "base/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

// ---------------------------------------------------------------------------
// Tracer + spans

TEST(TraceSpanTest, NestedSpansRecorded) {
  obs::Tracer tracer;
  {
    obs::TraceSpan outer(&tracer, "test", "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      obs::TraceSpan inner(&tracer, "test", "inner");
      inner.arg("depth", std::int64_t{2});
    }
  }
  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are emitted at destruction: inner closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].track, events[1].track);
  // The outer span contains the inner one in time.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "depth");
  EXPECT_EQ(events[0].args[0].value, "2");
  EXPECT_FALSE(events[0].args[0].quoted);
}

TEST(TraceSpanTest, NullTracerIsInert) {
  obs::TraceSpan span(nullptr, "test", "ghost");
  EXPECT_FALSE(span.active());
  span.arg("k", std::int64_t{1});
  span.finish();  // must not crash
}

TEST(TraceSpanTest, MoveTransfersOwnership) {
  obs::Tracer tracer;
  {
    obs::TraceSpan a(&tracer, "test", "moved");
    obs::TraceSpan b(std::move(a));
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(tracer.event_count(), 1u);  // emitted once, not twice
}

TEST(TraceSpanTest, FinishIsIdempotent) {
  obs::Tracer tracer;
  obs::TraceSpan span(&tracer, "test", "once");
  span.finish();
  span.finish();
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(TracerTest, ThreadsGetDistinctDenseTracks) {
  obs::Tracer tracer;
  tracer.name_this_thread("main");
  const int main_track = tracer.thread_track();
  int worker_track = -1;
  std::thread worker([&] {
    tracer.instant("test", "from-worker");
    worker_track = tracer.thread_track();
  });
  worker.join();
  EXPECT_NE(main_track, worker_track);
  EXPECT_GE(worker_track, 0);
  const std::vector<std::string> names = tracer.track_names();
  ASSERT_GT(names.size(), static_cast<std::size_t>(main_track));
  EXPECT_EQ(names[static_cast<std::size_t>(main_track)], "main");
}

// The TSan target for this suite: many threads emitting spans, instants
// and counters into one tracer while the main thread snapshots.
TEST(TracerTest, ConcurrentEmissionAndSnapshot) {
  obs::Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &go, t] {
      while (!go.load()) {
      }
      tracer.name_this_thread("worker" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan span(&tracer, "test", "work");
        span.arg("i", i);
        tracer.counter("test", "progress", i);
      }
    });
  }
  go.store(true);
  // Concurrent snapshots must observe a consistent prefix of each slot.
  for (int i = 0; i < 50; ++i) {
    const auto partial = tracer.snapshot();
    EXPECT_LE(partial.size(),
              static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  // Tracks are dense: every event's track is in [0, #threads).
  for (const obs::TraceEvent& event : tracer.snapshot()) {
    EXPECT_GE(event.track, 0);
    EXPECT_LT(event.track, kThreads);
  }
}

TEST(TracerTest, ResetDropsEventsAndNames) {
  obs::Tracer tracer;
  tracer.instant("test", "before");
  tracer.name_this_thread("old");
  tracer.reset();
  EXPECT_EQ(tracer.event_count(), 0u);
  for (const std::string& name : tracer.track_names()) {
    EXPECT_TRUE(name.empty());
  }
}

// ---------------------------------------------------------------------------
// Metrics

TEST(HistogramTest, BucketEdgesUseLessOrEqual) {
  obs::Histogram histogram({1.0, 2.0, 4.0});
  histogram.observe(1.0);  // on the edge: belongs to bucket le=1
  histogram.observe(1.5);
  histogram.observe(4.0);  // on the last finite edge
  histogram.observe(4.1);  // overflow
  EXPECT_EQ(histogram.bucket_count(0), 1);
  EXPECT_EQ(histogram.bucket_count(1), 1);
  EXPECT_EQ(histogram.bucket_count(2), 1);
  EXPECT_EQ(histogram.bucket_count(3), 1);  // +Inf bucket
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_DOUBLE_EQ(histogram.sum(), 10.6);
  EXPECT_DOUBLE_EQ(histogram.max(), 4.1);
}

TEST(HistogramTest, EmptyHistogramReportsZeroMax) {
  obs::Histogram histogram(obs::default_ms_buckets());
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
}

TEST(HistogramTest, RejectsInvalidBounds) {
  EXPECT_THROW(obs::Histogram({}), InvalidArgument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), InvalidArgument);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAndNamed) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("a.count");
  counter.add(3);
  registry.counter("a.count").increment();
  EXPECT_EQ(&registry.counter("a.count"), &counter);
  EXPECT_EQ(registry.counter_value("a.count"), 4);
  EXPECT_EQ(registry.counter_value("missing"), 0);
  registry.gauge("a.level").set(7);
  registry.gauge("a.level").add(-2);
  EXPECT_EQ(registry.gauge_value("a.level"), 5);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
}

TEST(MetricsRegistryTest, JsonSnapshotParses) {
  obs::MetricsRegistry registry;
  registry.counter("runs").add(2);
  registry.gauge("depth").set(-3);
  registry.histogram("wait_ms", {1.0, 10.0}).observe(0.5);
  registry.histogram("wait_ms").observe(100.0);

  const base::json::Value doc = base::json::parse(registry.to_json());
  EXPECT_EQ(doc.at("counters").at("runs").as_int(), 2);
  EXPECT_EQ(doc.at("gauges").at("depth").as_int(), -3);
  const base::json::Value& hist = doc.at("histograms").at("wait_ms");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  const base::json::Value& buckets = hist.at("buckets");
  ASSERT_TRUE(buckets.is_array());
  ASSERT_EQ(buckets.array.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(buckets.array[0].at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(buckets.array[0].at("le").number, 1.0);
  EXPECT_EQ(buckets.array[2].at("le").string, "+Inf");
  EXPECT_EQ(buckets.array[2].at("count").as_int(), 1);
}

// Concurrent hammering of one registry: counters, gauges and histogram
// observations from several threads (TSan coverage for the atomics and
// the CAS loops in Histogram::observe).
TEST(MetricsRegistryTest, ConcurrentUpdates) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& counter = registry.counter("ops");
      obs::Histogram& histogram = registry.histogram("lat_ms");
      for (int i = 0; i < kOps; ++i) {
        counter.increment();
        registry.gauge("level").add(1);
        histogram.observe(static_cast<double>(i % 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter_value("ops"), kThreads * kOps);
  EXPECT_EQ(registry.gauge_value("level"), kThreads * kOps);
  EXPECT_EQ(registry.find_histogram("lat_ms")->count(), kThreads * kOps);
}

// ---------------------------------------------------------------------------
// Chrome-trace export

TEST(ChromeTraceTest, ExportIsValidAndComplete) {
  obs::Tracer tracer;
  tracer.name_this_thread("driver \"0\"");  // exercises escaping
  {
    obs::TraceSpan span(&tracer, "engine", "block");
    span.arg("i", std::int64_t{3}).arg("label", std::string("a\"b"));
  }
  tracer.instant("recovery", "restart",
                 {obs::TraceArg::number("attempt", 1)});
  tracer.counter("engine", "progress", 42);

  const base::json::Value doc =
      base::json::parse(obs::chrome_trace_json(tracer));
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const base::json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // 1 thread_name metadata + span + instant + counter.
  ASSERT_EQ(events.array.size(), 4u);

  int metadata = 0;
  int complete = 0;
  int instant = 0;
  int counter = 0;
  for (const base::json::Value& event : events.array) {
    const std::string& ph = event.at("ph").string;
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.at("args").at("name").string, "driver \"0\"");
    } else if (ph == "X") {
      ++complete;
      EXPECT_TRUE(event.at("ts").is_number());
      EXPECT_TRUE(event.at("dur").is_number());
      EXPECT_EQ(event.at("cat").string, "engine");
      EXPECT_EQ(event.at("args").at("i").as_int(), 3);
      EXPECT_EQ(event.at("args").at("label").string, "a\"b");
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(event.at("s").string, "t");
      EXPECT_EQ(event.at("args").at("attempt").as_int(), 1);
    } else if (ph == "C") {
      ++counter;
      EXPECT_EQ(event.at("args").at("progress").as_int(), 42);
    }
  }
  EXPECT_EQ(metadata, 1);
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(instant, 1);
  EXPECT_EQ(counter, 1);
}

// ---------------------------------------------------------------------------
// JSON writer + parser round trips

TEST(JsonWriterTest, PrettyAndCompactLayout) {
  base::JsonWriter w;
  w.begin_object();
  w.key("score").value(42);
  w.key("rows").begin_array();
  w.begin_object(base::JsonWriter::kCompact);
  w.key("name").value("a\nb");
  w.key("ratio").value_fixed(0.12345, 3);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n  \"score\": 42,\n  \"rows\": [\n"
            "    {\"name\": \"a\\nb\", \"ratio\": 0.123}\n  ]\n}");
}

TEST(JsonParseTest, HandlesEscapesAndNumbers) {
  const base::json::Value doc = base::json::parse(
      R"({"s": "a\"\\\nA", "n": -1.5e2, "b": true,)"
      R"( "x": null, "a": [1, 2]})");
  EXPECT_EQ(doc.at("s").string, "a\"\\\nA");
  EXPECT_DOUBLE_EQ(doc.at("n").number, -150.0);
  EXPECT_TRUE(doc.at("b").boolean);
  EXPECT_TRUE(doc.at("x").is_null());
  EXPECT_EQ(doc.at("a").array.size(), 2u);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_THROW((void)base::json::parse("{"), InvalidArgument);
  EXPECT_THROW((void)base::json::parse("{} trailing"), InvalidArgument);
  EXPECT_THROW((void)base::json::parse("{'single': 1}"), InvalidArgument);
  EXPECT_THROW((void)base::json::parse(""), InvalidArgument);
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)base::json::parse(deep), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Phase profiler

TEST(PhaseProfilerTest, PhasesPartitionElapsedTime) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::PhaseProfiler profiler;
  profiler.switch_to(obs::Phase::kCompute);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  {
    obs::ScopedPhase checkpoint(&profiler, obs::Phase::kCheckpoint);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(profiler.current(), obs::Phase::kCompute);  // restored
  profiler.stop();
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  std::int64_t sum = 0;
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    sum += profiler.ns(static_cast<obs::Phase>(p));
  }
  EXPECT_EQ(sum, profiler.total_ns());
  // The profiler lived strictly inside [t0, now]: its closed intervals
  // can never sum past the elapsed wall time, and the sleeps guarantee
  // they dominate it.
  EXPECT_LE(sum, wall_ns);
  EXPECT_GE(sum, wall_ns / 2);
  EXPECT_GT(profiler.ns(obs::Phase::kCompute), 0);
  EXPECT_GT(profiler.ns(obs::Phase::kCheckpoint), 0);
}

TEST(PhaseProfilerTest, ScopedPhaseOnNullProfilerIsInert) {
  obs::ScopedPhase scoped(nullptr, obs::Phase::kCheckpoint);
}

TEST(PhaseProfilerTest, PhaseNamesAreStable) {
  EXPECT_STREQ(obs::phase_name(obs::Phase::kCompute), "compute");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kBorderRecv), "border_recv");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kBorderSend), "border_send");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kCheckpoint), "checkpoint");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kIdle), "idle");
}

// ---------------------------------------------------------------------------
// End-to-end: a two-device engine run under full observability

TEST(ObsIntegrationTest, TwoDeviceRunProducesCoherentArtifacts) {
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(20.0));

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  core::EngineConfig config;
  config.block_rows = 64;
  config.block_cols = 64;
  config.obs.tracer = &tracer;
  config.obs.metrics = &metrics;
  config.obs.profile_phases = true;

  core::MultiDeviceEngine engine(config, {&d0, &d1});
  auto [a, b] = testutil::related_pair(1500, 99);
  const core::EngineResult result = engine.run(a, b);

  // The five phases partition each device's driver-thread time: the
  // profiler's window is a superset of the wall_ns window (it opens at
  // runner construction, closes after wall_ns is read), so the sum is
  // never below wall_ns and exceeds it only by scheduling slack.
  ASSERT_EQ(result.devices.size(), 2u);
  for (const core::DeviceRunStats& stats : result.devices) {
    ASSERT_TRUE(stats.phases_tracked);
    const std::int64_t sum = stats.phase_compute_ns +
                             stats.phase_recv_ns + stats.phase_send_ns +
                             stats.phase_checkpoint_ns +
                             stats.phase_idle_ns;
    EXPECT_GT(stats.phase_compute_ns, 0);
    EXPECT_GE(sum, stats.wall_ns);
    EXPECT_LE(sum, stats.wall_ns + 250'000'000);  // thread-start slack
  }

  // Metrics agree with the result's own accounting.
  std::int64_t blocks = 0;
  std::int64_t chunks = 0;
  for (const core::DeviceRunStats& stats : result.devices) {
    blocks += stats.blocks - stats.pruned_blocks;
    chunks += stats.chunks_sent;
  }
  EXPECT_EQ(metrics.counter_value("engine.blocks_computed"), blocks);
  EXPECT_EQ(metrics.counter_value("engine.cells_computed"),
            result.computed_cells);
  EXPECT_EQ(metrics.counter_value("comm.chunks_sent"), chunks);
  EXPECT_EQ(metrics.counter_value("comm.chunks_received"), chunks);

  // The trace parses, covers both devices, and shows compute next to
  // border waits.
  const base::json::Value doc =
      base::json::parse(obs::chrome_trace_json(tracer));
  bool block_span = false;
  bool border_span = false;
  std::vector<std::string> device_threads;
  for (const base::json::Value& event : doc.at("traceEvents").array) {
    const std::string& ph = event.at("ph").string;
    if (ph == "M") {
      const std::string& name = event.at("args").at("name").string;
      if (name.rfind("dev", 0) == 0) device_threads.push_back(name);
    } else if (ph == "X") {
      const std::string& cat = event.at("cat").string;
      const std::string& name = event.at("name").string;
      block_span = block_span || (cat == "engine" && name == "block");
      border_span = border_span ||
                    (cat == "comm" && (name == "border_recv" ||
                                       name == "border_send"));
    }
  }
  EXPECT_TRUE(block_span);
  EXPECT_TRUE(border_span);
  EXPECT_EQ(device_threads.size(), 2u);

  // The merged report carries the metrics object.
  const base::json::Value report =
      base::json::parse(core::to_json(result, &metrics));
  EXPECT_EQ(report.at("metrics").at("counters")
                .at("engine.cells_computed").as_int(),
            result.computed_cells);
  EXPECT_TRUE(report.at("devices").array[0]
                  .find("phase_compute_ns") != nullptr);
}

// ProgressEvent timestamps (satellite of the tracing work): steady-clock
// nanoseconds since the run started, non-decreasing per device.
TEST(ObsIntegrationTest, ProgressEventsCarryMonotonicTimestamps) {
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(20.0));
  core::EngineConfig config;
  config.block_rows = 64;
  config.block_cols = 64;
  std::mutex mu;
  std::map<int, std::vector<std::int64_t>> stamps;
  config.progress = [&](const core::ProgressEvent& event) {
    const std::lock_guard<std::mutex> lock(mu);
    stamps[event.device_index].push_back(event.t_ns);
  };
  core::MultiDeviceEngine engine(config, {&d0, &d1});
  auto [a, b] = testutil::related_pair(800, 7);
  (void)engine.run(a, b);
  ASSERT_EQ(stamps.size(), 2u);
  for (const auto& [device, series] : stamps) {
    ASSERT_FALSE(series.empty());
    EXPECT_GE(series.front(), 0);
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_GE(series[i], series[i - 1]);
    }
  }
}

}  // namespace
}  // namespace mgpusw
