// Cross-feature integration tests: combinations of transport, kernel,
// schedule, pruning, checkpointing and the retrieval pipeline that the
// per-feature suites exercise only in isolation.
#include <gtest/gtest.h>

#include <memory>

#include "base/error.hpp"
#include "core/batch.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "core/special_rows.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::EngineConfig;
using core::MultiDeviceEngine;

struct Fleet {
  explicit Fleet(int count) {
    for (int d = 0; d < count; ++d) {
      devices.push_back(std::make_unique<vgpu::Device>(
          vgpu::toy_device(8.0 + 4.0 * d)));
      pointers.push_back(devices.back().get());
    }
  }
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> pointers;
};

TEST(IntegrationTest, TcpAntidiagPruningCombo) {
  auto [a, b] = testutil::related_pair(400, 200);
  Fleet fleet(3);
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.buffer_capacity = 2;
  config.transport = core::Transport::kTcp;
  config.kernel = "antidiag";
  config.enable_pruning = true;
  MultiDeviceEngine engine(config, fleet.pointers);
  EXPECT_EQ(engine.run(a, b).best.score,
            sw::linear_score(config.scheme, a, b).score);
}

TEST(IntegrationTest, PruningKeepsSpecialRowsGapFree) {
  // Pruned blocks must still contribute (zeroed) segments so checkpoint
  // rows assemble without gaps.
  const seq::Sequence s = testutil::random_sequence(640, 201);
  Fleet fleet(2);
  core::SpecialRowStore store;
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.enable_pruning = true;
  config.special_row_interval = 2;
  config.special_rows = &store;
  config.checkpoint_f = true;
  MultiDeviceEngine engine(config, fleet.pointers);
  const auto full = engine.run(s, s);
  EXPECT_EQ(full.best.score, 640);  // self comparison
  std::int64_t pruned = 0;
  for (const auto& device : full.devices) pruned += device.pruned_blocks;
  ASSERT_GT(pruned, 0) << "test needs pruning to actually fire";

  for (const std::int64_t row : store.rows()) {
    EXPECT_EQ(static_cast<std::int64_t>(
                  store.assemble_row(row, s.size()).size()),
              s.size());
  }

  // Resume from a mid checkpoint under pruning: the exact score must
  // survive (the zeroed borders propagate the same pruned state).
  const auto rows = store.rows();
  const std::int64_t mid = rows[rows.size() / 2];
  if (mid + 1 < s.size()) {
    const auto resumed = engine.resume(s, s, store, mid);
    // Self comparison: the optimum is at the bottom-right corner, inside
    // every resumed region.
    EXPECT_EQ(resumed.best.score, full.best.score);
  }
}

TEST(IntegrationTest, PipelineOverTcpWithAntidiagKernel) {
  Fleet fleet(2);
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.transport = core::Transport::kTcp;
  config.kernel = "antidiag";
  core::AlignmentPipeline pipeline(config, fleet.pointers);
  auto [a, b] = testutil::related_pair(300, 202);
  const auto result = pipeline.align(a, b);
  const auto expected = sw::linear_score(config.scheme, a, b);
  EXPECT_EQ(result.stage1.best, expected);
  if (expected.score > 0) {
    sw::validate_alignment(config.scheme, a, b, result.alignment);
  }
}

TEST(IntegrationTest, BatchWithProgressAndDiagonalSchedule) {
  Fleet fleet(2);
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.schedule = core::Schedule::kDiagonal;
  std::atomic<std::int64_t> events{0};
  config.progress = [&](const core::ProgressEvent&) { events.fetch_add(1); };

  std::vector<core::BatchItem> items;
  for (int k = 0; k < 2; ++k) {
    auto [a, b] = testutil::related_pair(
        220 + k * 30, static_cast<std::uint64_t>(k) + 203);
    items.push_back(core::BatchItem{"p" + std::to_string(k), a, b});
  }
  const auto batch = core::run_batch(config, fleet.pointers, items);
  for (std::size_t k = 0; k < items.size(); ++k) {
    EXPECT_EQ(batch.items[k].result.best,
              sw::linear_score(config.scheme, items[k].query,
                               items[k].subject));
  }
  EXPECT_GT(events.load(), 0);
}

TEST(IntegrationTest, TinyBufferDeepFleetStress) {
  // 6 devices, buffer capacity 1, small blocks: maximal back-pressure
  // and pipeline depth on one core. Must neither deadlock nor err.
  auto [a, b] = testutil::related_pair(500, 204);
  Fleet fleet(6);
  EngineConfig config;
  config.block_rows = 16;
  config.block_cols = 16;
  config.buffer_capacity = 1;
  MultiDeviceEngine engine(config, fleet.pointers);
  EXPECT_EQ(engine.run(a, b).best,
            sw::linear_score(config.scheme, a, b));
}

TEST(IntegrationTest, RepeatedRunsOnSharedDevicesAccumulateStats) {
  Fleet fleet(2);
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  MultiDeviceEngine engine(config, fleet.pointers);
  auto [a, b] = testutil::related_pair(256, 205);
  const auto expected = sw::linear_score(config.scheme, a, b);
  const std::int64_t kernels_before =
      fleet.pointers[0]->kernels_launched();
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(engine.run(a, b).best, expected) << "round " << round;
  }
  EXPECT_GT(fleet.pointers[0]->kernels_launched(), kernels_before);
}

}  // namespace
}  // namespace mgpusw
