#include <gtest/gtest.h>

#include "base/error.hpp"
#include "sw/banded.hpp"
#include "sw/linear.hpp"
#include "sw/reference.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Sequence;
using sw::ScoreScheme;

const ScoreScheme kDefault{};

TEST(BandedTest, FullWidthBandEqualsReference) {
  const auto a = testutil::random_sequence(80, 1);
  const auto b = testutil::random_sequence(60, 2);
  const auto banded = banded_score(kDefault, a, b, /*radius=*/200);
  EXPECT_EQ(banded, reference_score(kDefault, a, b));
}

TEST(BandedTest, ZeroRadiusIsMainDiagonalOnly) {
  const Sequence s("s", "ACGTACGT");
  const auto result = banded_score(kDefault, s, s, 0);
  EXPECT_EQ(result.score, 8);  // self comparison lives on the diagonal
}

TEST(BandedTest, NarrowBandMissesOffDiagonalAlignment) {
  // Match sits far off the main diagonal: a small band cannot see it.
  const Sequence a("a", "TTTTTTTTTTTTTTTTACGTACGT");
  const Sequence b("b", "ACGTACGTCCCCCCCCCCCCCCCC");
  const auto wide = banded_score(kDefault, a, b, 100);
  const auto narrow = banded_score(kDefault, a, b, 2);
  EXPECT_EQ(wide.score, 8);
  EXPECT_LT(narrow.score, wide.score);
}

TEST(BandedTest, OffsetRecoversOffDiagonalAlignment) {
  const Sequence a("a", "TTTTTTTTTTTTTTTTACGTACGT");
  const Sequence b("b", "ACGTACGTCCCCCCCCCCCCCCCC");
  // The alignment sits near row-col offset +16.
  const auto result = banded_score(kDefault, a, b, 4, /*offset=*/16);
  EXPECT_EQ(result.score, 8);
}

TEST(BandedTest, NegativeRadiusThrows) {
  const Sequence s("s", "ACGT");
  EXPECT_THROW((void)banded_score(kDefault, s, s, -1), InvalidArgument);
}

TEST(BandedTest, EmptyInputs) {
  const Sequence empty;
  const Sequence s("s", "ACGT");
  EXPECT_EQ(banded_score(kDefault, empty, s, 5).score, 0);
  EXPECT_EQ(banded_score(kDefault, s, empty, 5).score, 0);
}

// Property: for related pairs (alignments near the diagonal) a moderate
// band reproduces the exact score, and any band result is a lower bound.
class BandedProperty : public ::testing::TestWithParam<int> {};

TEST_P(BandedProperty, ExactWithinBandAndLowerBoundAlways) {
  const int seed = GetParam();
  auto [a, b] =
      testutil::related_pair(200, static_cast<std::uint64_t>(seed) + 7);
  const auto exact = linear_score(kDefault, a, b);
  const auto wide = banded_score(kDefault, a, b, 64);
  EXPECT_EQ(wide.score, exact.score) << "seed " << seed;
  for (const std::int64_t radius : {1, 4, 16}) {
    EXPECT_LE(banded_score(kDefault, a, b, radius).score, exact.score);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedProperty, ::testing::Range(0, 10));

TEST(AdaptiveBandedTest, ConvergesToExactScore) {
  for (int seed = 0; seed < 6; ++seed) {
    auto [a, b] =
        testutil::related_pair(150, static_cast<std::uint64_t>(seed) + 31);
    const auto exact = linear_score(kDefault, a, b);
    const auto adaptive = adaptive_banded_score(kDefault, a, b, 2);
    EXPECT_EQ(adaptive.score, exact.score) << "seed " << seed;
  }
}

TEST(AdaptiveBandedTest, BadInitialRadiusThrows) {
  const Sequence s("s", "ACGT");
  EXPECT_THROW((void)adaptive_banded_score(kDefault, s, s, 0), InvalidArgument);
}

}  // namespace
}  // namespace mgpusw
