#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "base/time.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

// ---------------------------------------------------------------------------
// specs

TEST(SpecTest, PaperProfilesExist) {
  EXPECT_EQ(vgpu::gtx_560_ti().name, "GTX 560 Ti");
  EXPECT_EQ(vgpu::gtx_580().sm_count, 16);
  EXPECT_GT(vgpu::gtx_680().sw_gcups, vgpu::gtx_580().sw_gcups);
  EXPECT_GT(vgpu::tesla_m2090().memory_bytes, 4LL << 30);
}

TEST(SpecTest, Environment1IsHeterogeneousAndMatchesHeadline) {
  const auto env = vgpu::environment1();
  ASSERT_EQ(env.size(), 3u);
  double total = 0.0;
  for (const auto& spec : env) total += spec.sw_gcups;
  // The paper's headline: up to 140.36 GCUPS with 3 heterogeneous GPUs.
  EXPECT_NEAR(total, 140.4, 1.0);
  EXPECT_NE(env[0].sw_gcups, env[1].sw_gcups);
}

TEST(SpecTest, Environment2IsHomogeneous) {
  const auto env = vgpu::environment2();
  ASSERT_EQ(env.size(), 3u);
  EXPECT_EQ(env[0], env[1]);
  EXPECT_EQ(env[1], env[2]);
}

TEST(SpecTest, SpecByName) {
  EXPECT_EQ(vgpu::spec_by_name("gtx580").name, "GTX 580");
  EXPECT_EQ(vgpu::spec_by_name("m2090").name, "Tesla M2090");
  EXPECT_THROW(vgpu::spec_by_name("rtx4090"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// device runtime

TEST(DeviceTest, ExecutesTasks) {
  vgpu::Device device(vgpu::toy_device(1.0));
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    device.execute([&counter] { counter.fetch_add(1); });
  }
  device.synchronize();
  EXPECT_EQ(counter.load(), 20);
}

TEST(DeviceTest, KernelAccounting) {
  vgpu::Device device(vgpu::toy_device(1.0));
  device.account_kernel(1000, 12345);
  device.account_kernel(2000, 55);
  EXPECT_EQ(device.kernels_launched(), 2);
  EXPECT_EQ(device.cells_computed(), 12400);
  EXPECT_GE(device.busy_ns(), 3000);
}

TEST(DeviceTest, ThrottleAddsPenalty) {
  vgpu::Device slow(vgpu::toy_device(1.0), {.slowdown = 3.0});
  base::WallTimer timer;
  slow.account_kernel(2'000'000, 100);  // 2 ms kernel -> 4 ms penalty
  const auto elapsed = timer.elapsed_ns();
  EXPECT_GE(elapsed, 3'500'000);
  EXPECT_GE(slow.busy_ns(), 5'500'000);
}

TEST(DeviceTest, InvalidSlowdownThrows) {
  EXPECT_THROW(vgpu::Device(vgpu::toy_device(1.0), {.slowdown = 0.5}),
               InvalidArgument);
}

TEST(DeviceTest, MemoryTracking) {
  vgpu::Device device(vgpu::toy_device(1.0));
  {
    auto buffer = device.allocate(1000);
    EXPECT_EQ(device.memory_used(), 1000);
    auto second = device.allocate(24);
    EXPECT_EQ(device.memory_used(), 1024);
  }
  EXPECT_EQ(device.memory_used(), 0);  // RAII released
}

TEST(DeviceTest, OutOfMemoryThrows) {
  vgpu::DeviceSpec spec = vgpu::toy_device(1.0);
  spec.memory_bytes = 100;
  vgpu::Device device(spec);
  auto buffer = device.allocate(80);
  EXPECT_THROW(device.allocate(21), Error);
  EXPECT_EQ(device.memory_used(), 80);  // failed alloc rolled back
}

TEST(DeviceTest, MoveBufferTransfersOwnership) {
  vgpu::Device device(vgpu::toy_device(1.0));
  auto buffer = device.allocate(64);
  vgpu::DeviceBuffer moved = std::move(buffer);
  EXPECT_EQ(device.memory_used(), 64);
  moved.reset();
  EXPECT_EQ(device.memory_used(), 0);
}

TEST(DeviceTest, WorkerCountDefaultsCapped) {
  vgpu::Device device(vgpu::gtx_580(), {.worker_threads = 0});
  EXPECT_GE(device.worker_count(), 1);
  EXPECT_LE(device.worker_count(), 16);
}

// ---------------------------------------------------------------------------
// streams

TEST(StreamTest, FifoWithinStream) {
  vgpu::Device device(vgpu::toy_device(1.0), {.worker_threads = 2});
  vgpu::Stream stream(device);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 30; ++i) {
    stream.enqueue([&, i] {
      std::lock_guard lock(mu);
      order.push_back(i);
    });
  }
  stream.synchronize();
  ASSERT_EQ(order.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(StreamTest, TwoStreamsBothComplete) {
  vgpu::Device device(vgpu::toy_device(1.0), {.worker_threads = 2});
  vgpu::Stream s1(device);
  vgpu::Stream s2(device);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    s1.enqueue([&count] { count.fetch_add(1); });
    s2.enqueue([&count] { count.fetch_add(1); });
  }
  s1.synchronize();
  s2.synchronize();
  EXPECT_EQ(count.load(), 20);
}

TEST(StreamTest, SynchronizeOnEmptyStream) {
  vgpu::Device device(vgpu::toy_device(1.0));
  vgpu::Stream stream(device);
  stream.synchronize();  // must not hang
}

// ---------------------------------------------------------------------------
// events

TEST(EventTest, UnrecordedEventIsReady) {
  vgpu::Event event;
  EXPECT_TRUE(event.ready());
  event.wait();  // must not hang
}

TEST(EventTest, WaitBlocksUntilPriorWorkDone) {
  vgpu::Device device(vgpu::toy_device(1.0));
  vgpu::Stream stream(device);
  std::atomic<int> done{0};
  for (int i = 0; i < 5; ++i) {
    stream.enqueue([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  vgpu::Event event;
  stream.record(event);
  std::atomic<bool> after{false};
  stream.enqueue([&after] { after = true; });

  event.wait();
  EXPECT_EQ(done.load(), 5);  // everything before the record completed
  stream.synchronize();
  EXPECT_TRUE(after.load());
}

TEST(EventTest, ReRecordMovesMarker) {
  vgpu::Device device(vgpu::toy_device(1.0));
  vgpu::Stream stream(device);
  vgpu::Event event;
  stream.record(event);
  event.wait();
  EXPECT_TRUE(event.ready());
  std::atomic<int> count{0};
  stream.enqueue([&count] { count.fetch_add(1); });
  stream.record(event);
  event.wait();
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace mgpusw
