// Tests for the retrieval pipeline, batch runner, progress reporting,
// disk-spilled special rows and the anti-diagonal kernel inside the
// engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>

#include "base/error.hpp"
#include "core/batch.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "core/special_rows.hpp"
#include "sw/linear.hpp"
#include "sw/reference.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::EngineConfig;

EngineConfig small_config() {
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  return config;
}

// ---------------------------------------------------------------------------
// AlignmentPipeline

TEST(PipelineTest, RetrievesValidatedAlignment) {
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(20.0));
  core::AlignmentPipeline pipeline(small_config(), {&d0, &d1});
  auto [a, b] = testutil::related_pair(400, 3);
  const core::PipelineResult result = pipeline.align(a, b);

  const auto expected = sw::reference_score(sw::ScoreScheme{}, a, b);
  EXPECT_EQ(result.stage1.best, expected);
  ASSERT_GT(result.alignment.score, 0);
  EXPECT_EQ(result.alignment.score, expected.score);
  sw::validate_alignment(sw::ScoreScheme{}, a, b, result.alignment);
  EXPECT_EQ(result.alignment.query_end - 1, expected.end.row);
  EXPECT_EQ(result.start.row, result.alignment.query_begin);
}

TEST(PipelineTest, EmptyAlignmentShortCircuits) {
  vgpu::Device device(vgpu::toy_device(10.0));
  core::AlignmentPipeline pipeline(small_config(), {&device});
  const seq::Sequence a("a", "AAAAAAAA");
  const seq::Sequence b("b", "TTTTTTTT");
  const core::PipelineResult result = pipeline.align(a, b);
  EXPECT_EQ(result.stage1.best.score, 0);
  EXPECT_TRUE(result.alignment.ops.empty());
  EXPECT_EQ(result.start, (sw::CellPos{-1, -1}));
}

TEST(PipelineTest, RegionGuardThrows) {
  vgpu::Device device(vgpu::toy_device(10.0));
  core::AlignmentPipeline pipeline(small_config(), {&device},
                                   /*max_region_cells=*/100);
  auto [a, b] = testutil::related_pair(300, 4);
  EXPECT_THROW((void)pipeline.align(a, b), InvalidArgument);
}

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, ScoreAndOpsConsistent) {
  const int seed = GetParam();
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(15.0));
  vgpu::Device d2(vgpu::toy_device(25.0));
  core::AlignmentPipeline pipeline(small_config(), {&d0, &d1, &d2});
  auto [a, b] = testutil::related_pair(
      250 + seed * 31, static_cast<std::uint64_t>(seed) + 40);
  const core::PipelineResult result = pipeline.align(a, b);
  const auto expected = sw::linear_score(sw::ScoreScheme{}, a, b);
  EXPECT_EQ(result.stage1.best, expected);
  if (expected.score > 0) {
    EXPECT_EQ(result.alignment.score, expected.score);
    sw::validate_alignment(sw::ScoreScheme{}, a, b, result.alignment);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// engine with the anti-diagonal kernel

class AntidiagEngine : public ::testing::TestWithParam<int> {};

TEST_P(AntidiagEngine, MatchesRowScanKernel) {
  const int seed = GetParam();
  auto [a, b] = testutil::related_pair(
      300, static_cast<std::uint64_t>(seed) + 60);
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(20.0));

  EngineConfig config = small_config();
  config.kernel = "antidiag";
  core::MultiDeviceEngine engine(config, {&d0, &d1});
  EXPECT_EQ(engine.run(a, b).best,
            sw::linear_score(config.scheme, a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AntidiagEngine, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// progress reporting

TEST(ProgressTest, RowMajorEmitsPerBlockRow) {
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(10.0));
  EngineConfig config = small_config();  // 32-row blocks

  std::mutex mu;
  std::vector<core::ProgressEvent> events;
  config.progress = [&](const core::ProgressEvent& event) {
    std::lock_guard lock(mu);
    events.push_back(event);
  };
  core::MultiDeviceEngine engine(config, {&d0, &d1});
  auto [a, b] = testutil::related_pair(320, 9);  // 10 block rows
  (void)engine.run(a, b);

  // Each of the two devices reports 10 block rows.
  ASSERT_EQ(events.size(), 20u);
  std::int64_t final_per_device[2] = {0, 0};
  for (const auto& event : events) {
    ASSERT_GE(event.device_index, 0);
    ASSERT_LT(event.device_index, 2);
    EXPECT_EQ(event.total_units, 10);
    EXPECT_GE(event.completed_units, 1);
    EXPECT_LE(event.completed_units, 10);
    final_per_device[event.device_index] =
        std::max(final_per_device[event.device_index],
                 event.completed_units);
  }
  EXPECT_EQ(final_per_device[0], 10);
  EXPECT_EQ(final_per_device[1], 10);
}

TEST(ProgressTest, DiagonalEmitsPerDiagonal) {
  vgpu::Device device(vgpu::toy_device(10.0));
  EngineConfig config = small_config();
  config.schedule = core::Schedule::kDiagonal;
  std::atomic<int> count{0};
  std::int64_t last_total = 0;
  config.progress = [&](const core::ProgressEvent& event) {
    count.fetch_add(1);
    last_total = event.total_units;
  };
  core::MultiDeviceEngine engine(config, {&device});
  auto [a, b] = testutil::related_pair(320, 10);
  (void)engine.run(a, b);
  EXPECT_EQ(count.load(), static_cast<int>(last_total));
  EXPECT_GT(last_total, 0);
}

// ---------------------------------------------------------------------------
// disk-spilled special rows

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mgpusw_srw_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(DiskStoreTest, SpillAndAssemble) {
  core::SpecialRowStore store(dir_.string());
  EXPECT_TRUE(store.spills_to_disk());
  store.save_segment(5, 3, {30, 40});
  store.save_segment(5, 0, {0, 10, 20});
  EXPECT_EQ(store.assemble_row(5, 5),
            (std::vector<sw::Score>{0, 10, 20, 30, 40}));
  EXPECT_EQ(store.rows(), (std::vector<std::int64_t>{5}));
  EXPECT_EQ(store.bytes(),
            static_cast<std::int64_t>(5 * sizeof(sw::Score)));
}

TEST_F(DiskStoreTest, MatchesMemoryStoreThroughEngine) {
  core::SpecialRowStore disk(dir_.string());
  core::SpecialRowStore memory;
  auto [a, b] = testutil::related_pair(320, 20);

  for (core::SpecialRowStore* store : {&disk, &memory}) {
    vgpu::Device d0(vgpu::toy_device(10.0));
    vgpu::Device d1(vgpu::toy_device(20.0));
    EngineConfig config = small_config();
    config.special_row_interval = 2;
    config.special_rows = store;
    core::MultiDeviceEngine engine(config, {&d0, &d1});
    (void)engine.run(a, b);
  }
  ASSERT_EQ(disk.rows(), memory.rows());
  for (const std::int64_t row : disk.rows()) {
    EXPECT_EQ(disk.assemble_row(row, b.size()),
              memory.assemble_row(row, b.size()))
        << "row " << row;
  }
}

TEST_F(DiskStoreTest, ClearRemovesFiles) {
  core::SpecialRowStore store(dir_.string());
  store.save_segment(1, 0, {1, 2, 3});
  const auto file = dir_ / "row_1.srw";
  EXPECT_TRUE(std::filesystem::exists(file));
  store.clear();
  EXPECT_FALSE(std::filesystem::exists(file));
  EXPECT_TRUE(store.rows().empty());
}

TEST_F(DiskStoreTest, GapDetectedOnDisk) {
  core::SpecialRowStore store(dir_.string());
  store.save_segment(2, 0, {1});
  store.save_segment(2, 5, {6});
  EXPECT_THROW((void)store.assemble_row(2, 6), InternalError);
}

// ---------------------------------------------------------------------------
// batch runner

TEST(BatchTest, RunsAllItemsAndAggregates) {
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(20.0));

  std::vector<core::BatchItem> items;
  for (int seed = 0; seed < 3; ++seed) {
    auto [a, b] = testutil::related_pair(
        200 + 40 * seed, static_cast<std::uint64_t>(seed) + 70);
    items.push_back(core::BatchItem{"pair" + std::to_string(seed),
                                    std::move(a), std::move(b)});
  }
  const core::BatchResult batch =
      core::run_batch(small_config(), {&d0, &d1}, items);

  ASSERT_EQ(batch.items.size(), 3u);
  std::int64_t cells = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(batch.items[k].label, items[k].label);
    EXPECT_EQ(batch.items[k].result.best,
              sw::linear_score(sw::ScoreScheme{}, items[k].query,
                               items[k].subject));
    cells += batch.items[k].result.matrix_cells;
  }
  EXPECT_EQ(batch.total_cells, cells);
  EXPECT_GT(batch.gcups(), 0.0);
}

TEST(BatchTest, EmptyBatchThrows) {
  vgpu::Device device(vgpu::toy_device(10.0));
  EXPECT_THROW((void)core::run_batch(small_config(), {&device}, {}),
               InvalidArgument);
}

}  // namespace
}  // namespace mgpusw
