// Alignment report — the full stage pipeline on a laptop-scale pair.
//
// Stage 1 (the paper's contribution) finds the optimal score and end
// position with the multi-device engine; stage 2 locates the alignment
// start by the anchored reverse scan; stage 3 reconstructs the full
// alignment with Myers-Miller in linear space. The report prints the
// rendered alignment with identity statistics — what a biologist would
// actually look at.
//
//   $ ./alignment_report --length=2000 --divergence=0.10
#include <cstdio>

#include "mgpusw.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags("Retrieve and render a full local alignment");
  flags.add_int("length", 1500, "ancestral sequence length");
  flags.add_double("divergence", 0.08, "mutation model divergence");
  flags.add_int("seed", 7, "genome seed");
  flags.add_int("width", 72, "render width");
  if (!flags.parse(argc, argv)) return 0;

  // Build a homolog pair with the requested divergence.
  seq::MutationModel model;
  model.snp_rate = flags.get_double("divergence");
  model.indel_rate = flags.get_double("divergence") / 10.0;
  model.segment_rate = 0.0;
  const seq::Sequence ancestor = seq::generate_chromosome(
      "locusA", flags.get_int("length"),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  const seq::Sequence homolog = seq::mutate_homolog(
      ancestor, model,
      static_cast<std::uint64_t>(flags.get_int("seed")) + 1, "locusB");

  // The three-stage pipeline: stage 1 distributed on two virtual
  // devices, stages 2-3 serial over the bounded alignment region.
  vgpu::Device left(vgpu::gtx_580());
  vgpu::Device right(vgpu::gtx_680());
  core::EngineConfig config;
  config.block_rows = 64;
  config.block_cols = 64;
  core::AlignmentPipeline pipeline(config, {&left, &right});
  const core::PipelineResult result = pipeline.align(ancestor, homolog);

  std::printf("stage 1: score %d ends at (%lld, %lld)  [%s cells, %s]\n",
              result.stage1.best.score,
              static_cast<long long>(result.stage1.best.end.row),
              static_cast<long long>(result.stage1.best.end.col),
              base::with_thousands(result.stage1.matrix_cells).c_str(),
              base::human_duration(result.stage1.wall_seconds).c_str());
  if (result.stage1.best.score == 0) {
    std::printf("no positive-scoring alignment; nothing to report\n");
    return 0;
  }
  std::printf("stage 2: alignment starts at (%lld, %lld)  [%s]\n",
              static_cast<long long>(result.start.row),
              static_cast<long long>(result.start.col),
              base::human_duration(result.stage2_seconds).c_str());
  const sw::Alignment& alignment = result.alignment;
  sw::validate_alignment(config.scheme, ancestor, homolog, alignment);
  std::printf(
      "stage 3: %zu ops, %.1f%% identity, query [%lld, %lld), subject "
      "[%lld, %lld)\n\n",
      alignment.ops.size(), alignment.identity() * 100.0,
      static_cast<long long>(alignment.query_begin),
      static_cast<long long>(alignment.query_end),
      static_cast<long long>(alignment.subject_begin),
      static_cast<long long>(alignment.subject_end));

  const std::string rendered = sw::render_alignment(
      ancestor, homolog, alignment,
      static_cast<int>(flags.get_int("width")));
  // Print only the first dozen lines for long alignments.
  int lines = 0;
  for (const char c : rendered) {
    std::putchar(c);
    if (c == '\n' && ++lines >= 24) {
      std::printf("... (%zu ops total)\n", alignment.ops.size());
      break;
    }
  }
  return 0;
}
