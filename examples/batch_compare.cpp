// Batch comparison — the paper's full evaluation workload in one run.
//
// Compares all four human/chimp chromosome pairs (synthetic, scaled) on
// one device fleet, with a live progress line per device, and prints the
// per-pair and aggregate results — mirroring how the paper reports its
// evaluation runs. By default every pair spans the whole fleet one at a
// time (the paper's mode); --devices-per-item and --max-in-flight switch
// to the concurrent scheduler, running several pairs on disjoint device
// leases at once.
//
//   $ ./batch_compare --scale=8192 --devices=3
//   $ ./batch_compare --scale=8192 --devices=4 --devices-per-item=2
//         --max-in-flight=2
#include <atomic>
#include <cstdio>
#include <memory>

#include "mgpusw.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags("Compare all chromosome pairs in one batch");
  flags.add_int("scale", 8192, "divide paper lengths by this factor");
  flags.add_int("devices", 3, "number of virtual devices");
  flags.add_int("devices-per-item", 0,
                "devices leased per comparison (0 = whole fleet)");
  flags.add_int("max-in-flight", 1,
                "comparisons running concurrently on disjoint leases");
  flags.add_int("interseq-max-len", 0,
                "pairs this short run on the inter-sequence SIMD kernel, "
                "many per vector (0 = off)");
  flags.add_bool("progress", true, "print live progress");
  flags.add_string("trace-out", "",
                   "write a Chrome/Perfetto trace of the batch here");
  flags.add_string("metrics-json", "",
                   "write the metrics registry snapshot as JSON here");
  if (!flags.parse(argc, argv)) return 0;

  // Build the workload: every pair the paper evaluates.
  std::vector<core::BatchItem> items;
  for (const seq::ChromosomePair& pair : seq::paper_chromosome_pairs()) {
    const seq::HomologPair homologs = seq::make_homolog_pair(
        seq::scaled_pair(pair, flags.get_int("scale")), 13);
    items.push_back(
        core::BatchItem{pair.id, homologs.query, homologs.subject});
  }

  // Device fleet: the heterogeneous environment-1 profiles.
  const auto env = vgpu::environment1();
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  for (int d = 0; d < flags.get_int("devices"); ++d) {
    devices.push_back(std::make_unique<vgpu::Device>(
        env[static_cast<std::size_t>(d) % env.size()]));
  }
  core::DeviceFleet fleet(std::move(devices));

  core::BatchConfig batch_config;
  batch_config.devices_per_item =
      static_cast<int>(flags.get_int("devices-per-item"));
  batch_config.max_in_flight =
      static_cast<int>(flags.get_int("max-in-flight"));
  batch_config.interseq_max_len = flags.get_int("interseq-max-len");
  core::EngineConfig& config = batch_config.engine;
  config.block_rows = 128;
  config.block_cols = 128;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const bool want_trace = !flags.get_string("trace-out").empty();
  const bool want_metrics = !flags.get_string("metrics-json").empty();
  if (want_trace) config.obs.tracer = &tracer;
  if (want_trace || want_metrics) config.obs.metrics = &metrics;
  std::atomic<std::int64_t> units_done{0};
  if (flags.get_bool("progress")) {
    config.progress = [&](const core::ProgressEvent& event) {
      const std::int64_t done = units_done.fetch_add(1) + 1;
      if (done % 16 == 0) {
        std::fprintf(stderr, "\r  %s device %d: %lld/%lld block rows",
                     event.job.c_str(), event.device_index,
                     static_cast<long long>(event.completed_units),
                     static_cast<long long>(event.total_units));
      }
    };
  }

  const core::BatchResult batch =
      core::run_batch(batch_config, fleet, items);
  if (flags.get_bool("progress")) std::fprintf(stderr, "\r%60s\r", "");

  base::TextTable table({"pair", "matrix cells", "score", "end cell",
                         "time", "host GCUPS"});
  for (const core::BatchItemResult& item : batch.items) {
    table.add_row({
        item.label,
        base::with_thousands(item.result.matrix_cells),
        std::to_string(item.result.best.score),
        "(" + std::to_string(item.result.best.end.row) + ", " +
            std::to_string(item.result.best.end.col) + ")",
        base::human_duration(item.result.wall_seconds),
        base::format_double(item.result.gcups(), 3),
    });
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "batch total: %s cells, wall %s (%.3f GCUPS), summed item time %s "
      "(%.3f GCUPS)\n",
      base::with_thousands(batch.total_cells).c_str(),
      base::human_duration(batch.wall_seconds).c_str(), batch.gcups(),
      base::human_duration(batch.total_seconds).c_str(),
      batch.summed_gcups());

  if (want_trace) {
    obs::write_chrome_trace(flags.get_string("trace-out"), tracer);
    std::printf("trace  : %s (%zu events; open in ui.perfetto.dev)\n",
                flags.get_string("trace-out").c_str(),
                tracer.event_count());
  }
  if (want_metrics) {
    std::FILE* file =
        std::fopen(flags.get_string("metrics-json").c_str(), "w");
    MGPUSW_REQUIRE(file != nullptr,
                   "cannot open " << flags.get_string("metrics-json"));
    std::fputs((metrics.to_json() + "\n").c_str(), file);
    std::fclose(file);
    std::printf("metrics: %s\n", flags.get_string("metrics-json").c_str());
  }
  return 0;
}
