// Batch comparison — the paper's full evaluation workload in one run.
//
// Compares all four human/chimp chromosome pairs (synthetic, scaled) on
// one device fleet, with a live progress line per device, and prints the
// per-pair and aggregate results — mirroring how the paper reports its
// evaluation runs.
//
//   $ ./batch_compare --scale=8192 --devices=3
#include <atomic>
#include <cstdio>
#include <memory>

#include "mgpusw.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags("Compare all chromosome pairs in one batch");
  flags.add_int("scale", 8192, "divide paper lengths by this factor");
  flags.add_int("devices", 3, "number of virtual devices");
  flags.add_bool("progress", true, "print live progress");
  if (!flags.parse(argc, argv)) return 0;

  // Build the workload: every pair the paper evaluates.
  std::vector<core::BatchItem> items;
  for (const seq::ChromosomePair& pair : seq::paper_chromosome_pairs()) {
    const seq::HomologPair homologs = seq::make_homolog_pair(
        seq::scaled_pair(pair, flags.get_int("scale")), 13);
    items.push_back(
        core::BatchItem{pair.id, homologs.query, homologs.subject});
  }

  // Device fleet: the heterogeneous environment-1 profiles.
  const auto env = vgpu::environment1();
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> pointers;
  for (int d = 0; d < flags.get_int("devices"); ++d) {
    devices.push_back(std::make_unique<vgpu::Device>(
        env[static_cast<std::size_t>(d) % env.size()]));
    pointers.push_back(devices.back().get());
  }

  core::EngineConfig config;
  config.block_rows = 128;
  config.block_cols = 128;
  std::atomic<std::int64_t> units_done{0};
  if (flags.get_bool("progress")) {
    config.progress = [&](const core::ProgressEvent& event) {
      const std::int64_t done = units_done.fetch_add(1) + 1;
      if (done % 16 == 0) {
        std::fprintf(stderr, "\r  device %d: %lld/%lld block rows",
                     event.device_index,
                     static_cast<long long>(event.completed_units),
                     static_cast<long long>(event.total_units));
      }
    };
  }

  const core::BatchResult batch = core::run_batch(config, pointers, items);
  if (flags.get_bool("progress")) std::fprintf(stderr, "\r%40s\r", "");

  base::TextTable table({"pair", "matrix cells", "score", "end cell",
                         "time", "host GCUPS"});
  for (const core::BatchItemResult& item : batch.items) {
    table.add_row({
        item.label,
        base::with_thousands(item.result.matrix_cells),
        std::to_string(item.result.best.score),
        "(" + std::to_string(item.result.best.end.row) + ", " +
            std::to_string(item.result.best.end.col) + ")",
        base::human_duration(item.result.wall_seconds),
        base::format_double(item.result.gcups(), 3),
    });
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("batch total: %s cells in %s (%.3f GCUPS aggregate)\n",
              base::with_thousands(batch.total_cells).c_str(),
              base::human_duration(batch.total_seconds).c_str(),
              batch.gcups());
  return 0;
}
