// mgpusw-serve — the alignment service daemon.
//
// Serves the multi-device engine over TCP: clients submit comparisons
// (inline bases or synthetic specs), the daemon queues them with
// per-tenant quotas, schedules them onto the device fleet through the
// batch scheduler under full recovery, and answers STATUS / PROGRESS /
// RESULT / METRICS. A plain `curl http://127.0.0.1:PORT/` scrapes the
// metrics registry.
//
//   $ ./mgpusw-serve --port=7421 --devices=4 --scheduler-threads=2
//         --devices-per-job=2
//   $ ./mgpusw-serve --port=0            # ephemeral; port printed
//   $ ./mgpusw-serve --fault "dev0:die@kernel=40"   # chaos drill
//   $ ./mgpusw-serve --journal-dir=/var/lib/mgpusw  # survives restarts
#include <cstdio>

#include "base/flags.hpp"
#include "serve/server.hpp"
#include "vgpu/fault.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags("Alignment service daemon");
  flags.add_int("port", 7421, "TCP port to bind (0 = ephemeral)");
  flags.add_int("devices", 3, "number of virtual devices in the fleet");
  flags.add_int("scheduler-threads", 2, "jobs running concurrently");
  flags.add_int("devices-per-job", 0,
                "devices leased per job (0 = whole fleet)");
  flags.add_int("block", 128, "block size for served jobs");
  flags.add_int("max-running-per-tenant", 1,
                "per-tenant concurrent-job quota");
  flags.add_int("max-pending-per-tenant", 8, "per-tenant queued-job quota");
  flags.add_bool("reject-when-full", true,
                 "reject (vs queue) submits over the pending quota");
  flags.add_bool("recovery", true,
                 "wrap jobs in run_with_recovery (device-death survival)");
  flags.add_int("max-restarts", 2, "recovery restart budget per job");
  flags.add_string("fault", "",
                   "fault plan armed on the first job; " +
                       vgpu::fault_plan_grammar());
  flags.add_string("journal-dir", "",
                   "durable job journal directory (empty = no journal; "
                   "restarting on the same dir replays unfinished jobs)");
  flags.add_bool("fsync-journal", false,
                 "fsync the journal after every append (survives power "
                 "loss, not just process death)");
  flags.add_int("journal-compact-min-appends", 512,
                "appends between journal compaction checks");
  if (!flags.parse(argc, argv)) return 0;

  serve::ServerConfig config;
  config.port = static_cast<std::uint16_t>(flags.get_int("port"));
  config.devices = static_cast<int>(flags.get_int("devices"));
  config.scheduler_threads =
      static_cast<int>(flags.get_int("scheduler-threads"));
  config.devices_per_job =
      static_cast<int>(flags.get_int("devices-per-job"));
  config.block = flags.get_int("block");
  config.quota.max_running_per_tenant =
      static_cast<int>(flags.get_int("max-running-per-tenant"));
  config.quota.max_pending_per_tenant =
      static_cast<int>(flags.get_int("max-pending-per-tenant"));
  config.quota.reject_when_full = flags.get_bool("reject-when-full");
  config.enable_recovery = flags.get_bool("recovery");
  config.recovery.max_restarts =
      static_cast<int>(flags.get_int("max-restarts"));
  config.fault_plan = flags.get_string("fault");
  config.journal_dir = flags.get_string("journal-dir");
  config.journal_fsync = flags.get_bool("fsync-journal");
  config.journal_compact_min_appends =
      flags.get_int("journal-compact-min-appends");

  serve::AlignServer server(config);
  std::printf("mgpusw-serve listening on 127.0.0.1:%u (%d devices, %d "
              "scheduler threads)\n",
              server.port(), config.devices, config.scheduler_threads);
  if (!config.journal_dir.empty()) {
    std::printf("mgpusw-serve: journal at %s (%lld jobs replayed)\n",
                config.journal_dir.c_str(),
                static_cast<long long>(server.replayed_jobs()));
  }
  std::fflush(stdout);
  server.run();
  std::printf("mgpusw-serve: shutdown complete\n");
  return 0;
}
