// Chromosome comparison driver — the paper's workload as a CLI tool.
//
// Compares a human/chimp homologous chromosome pair (synthetic, scaled)
// or two user-provided FASTA files on a configurable set of virtual
// devices, printing the paper's metrics: score, position, GCUPS, and the
// per-device communication/computation breakdown.
//
//   $ ./chromosome_compare --pair=chr21 --scale=4096 --devices=3
//   $ ./chromosome_compare --query=a.fa --subject=b.fa --devices=2
//   $ ./chromosome_compare --pair=chr22 --hetero --transport=tcp
#include <cstdio>
#include <memory>

#include "mgpusw.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags(
      "Compare megabase sequences on multiple virtual GPUs");
  flags.add_string("pair", "chr21",
                   "chromosome pair: chr19, chr20, chr21 or chr22");
  flags.add_int("scale", 4096, "divide paper lengths by this factor");
  flags.add_string("query", "", "FASTA file for the query (overrides --pair)");
  flags.add_string("subject", "",
                   "FASTA file for the subject (overrides --pair)");
  flags.add_int("devices", 3, "number of virtual devices");
  flags.add_bool("hetero", true,
                 "heterogeneous device mix (cycles env-1 GPU profiles)");
  flags.add_int("block_rows", 128, "block height");
  flags.add_int("block_cols", 128, "block width");
  flags.add_int("buffer", 16, "circular buffer capacity (chunks)");
  flags.add_string("transport", "ring", "border transport: ring or tcp");
  {
    std::vector<std::string> kernels;
    for (const sw::KernelInfo& info : sw::kernel_registry()) {
      kernels.push_back(info.name);
    }
    flags.add_choice("kernel", std::string(sw::kDefaultKernel),
                     std::move(kernels),
                     "block kernel (simd uses the strongest CPU ISA; cap "
                     "with MGPUSW_SIMD=scalar|sse4.2)");
  }
  flags.add_bool("pruning", false, "enable block pruning");
  flags.add_bool("verbose", false,
                 "info-level logs (kernel dispatch, engine startup)");
  flags.add_bool("verify", true, "cross-check against the serial scan");
  flags.add_int("seed", 42, "synthetic genome seed");
  flags.add_string("dotplot", "",
                   "write a PGM dotplot of the two sequences here");
  flags.add_string("json", "", "write the run report as JSON here");
  flags.add_string("trace-out", "",
                   "write a Chrome/Perfetto trace of the run here "
                   "(open in ui.perfetto.dev or chrome://tracing)");
  flags.add_string("metrics-json", "",
                   "write the metrics registry snapshot as JSON here");
  flags.add_bool("phases", false,
                 "profile per-device phase times (implied by --trace-out "
                 "and --metrics-json)");
  flags.add_bool("modes", false,
                 "also report global/semi-global/overlap scores (serial)");
  if (!flags.parse(argc, argv)) return 0;
  if (flags.get_bool("verbose")) base::set_log_level(base::LogLevel::kInfo);

  // --- sequences -----------------------------------------------------
  seq::Sequence query;
  seq::Sequence subject;
  if (!flags.get_string("query").empty()) {
    const auto q = seq::read_fasta_file(flags.get_string("query"));
    const auto s = seq::read_fasta_file(flags.get_string("subject"));
    MGPUSW_REQUIRE(!q.empty() && !s.empty(), "FASTA files must be non-empty");
    query = q.front();
    subject = s.front();
  } else {
    const auto& pairs = seq::paper_chromosome_pairs();
    const seq::ChromosomePair* chosen = nullptr;
    for (const auto& pair : pairs) {
      if (pair.id == flags.get_string("pair")) chosen = &pair;
    }
    MGPUSW_REQUIRE(chosen != nullptr,
                   "unknown pair " << flags.get_string("pair"));
    const seq::HomologPair homologs = seq::make_homolog_pair(
        seq::scaled_pair(*chosen, flags.get_int("scale")),
        static_cast<std::uint64_t>(flags.get_int("seed")));
    query = homologs.query;
    subject = homologs.subject;
  }
  std::printf("query  : %-14s %12s\n", query.name().c_str(),
              base::human_bp(query.size()).c_str());
  std::printf("subject: %-14s %12s\n", subject.name().c_str(),
              base::human_bp(subject.size()).c_str());
  std::printf("matrix : %s cells\n\n",
              base::with_thousands(query.size() * subject.size()).c_str());

  if (!flags.get_string("dotplot").empty()) {
    const seq::Dotplot plot = seq::make_dotplot(query, subject);
    seq::write_pgm(plot, flags.get_string("dotplot"));
    std::printf("dotplot: %s (%.0f%% of word hits on the identity "
                "diagonal)\n\n",
                flags.get_string("dotplot").c_str(),
                plot.diagonal_fraction() * 100.0);
  }

  // --- devices ---------------------------------------------------------
  const auto env = vgpu::environment1();
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> pointers;
  const auto device_count = static_cast<int>(flags.get_int("devices"));
  for (int d = 0; d < device_count; ++d) {
    const vgpu::DeviceSpec spec =
        flags.get_bool("hetero")
            ? env[static_cast<std::size_t>(d) % env.size()]
            : vgpu::tesla_m2090();
    devices.push_back(std::make_unique<vgpu::Device>(spec));
    pointers.push_back(devices.back().get());
  }

  // --- engine ----------------------------------------------------------
  core::EngineConfig config;
  config.block_rows = flags.get_int("block_rows");
  config.block_cols = flags.get_int("block_cols");
  config.buffer_capacity = flags.get_int("buffer");
  config.enable_pruning = flags.get_bool("pruning");
  config.kernel = flags.get_string("kernel");
  config.transport = flags.get_string("transport") == "tcp"
                         ? core::Transport::kTcp
                         : core::Transport::kInProcess;

  // --- observability ---------------------------------------------------
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const bool want_trace = !flags.get_string("trace-out").empty();
  const bool want_metrics = !flags.get_string("metrics-json").empty();
  const bool want_phases =
      flags.get_bool("phases") || want_trace || want_metrics;
  if (want_trace) config.obs.tracer = &tracer;
  if (want_metrics || want_phases) config.obs.metrics = &metrics;
  config.obs.profile_phases = want_phases;

  core::MultiDeviceEngine engine(config, pointers);
  const core::EngineResult result = engine.run(query, subject);

  // --- report ----------------------------------------------------------
  std::printf("optimal score : %d at (%lld, %lld)\n", result.best.score,
              static_cast<long long>(result.best.end.row),
              static_cast<long long>(result.best.end.col));
  std::printf("wall time     : %s  (%.3f GCUPS on this host)\n",
              base::human_duration(result.wall_seconds).c_str(),
              result.gcups());

  base::TextTable table({"device", "columns", "blocks", "pruned", "busy",
                         "recv stall", "send stall"});
  for (const core::DeviceRunStats& stats : result.devices) {
    table.add_row({
        stats.device_name,
        base::with_thousands(stats.slice.cols),
        base::with_thousands(stats.blocks),
        base::with_thousands(stats.pruned_blocks),
        base::human_duration(static_cast<double>(stats.busy_ns) * 1e-9),
        base::human_duration(static_cast<double>(stats.recv_stall_ns) *
                             1e-9),
        base::human_duration(static_cast<double>(stats.send_stall_ns) *
                             1e-9),
    });
  }
  std::fputs(table.str().c_str(), stdout);

  if (want_phases) {
    // Per-phase wall-time split per device; the five columns partition
    // each driver thread's run() wall time (obs::PhaseProfiler).
    base::TextTable phase_table({"device", "compute", "border recv",
                                 "border send", "checkpoint", "idle"});
    for (const core::DeviceRunStats& stats : result.devices) {
      if (!stats.phases_tracked) continue;
      const auto cell = [](std::int64_t ns) {
        return base::human_duration(static_cast<double>(ns) * 1e-9);
      };
      phase_table.add_row({stats.device_name, cell(stats.phase_compute_ns),
                           cell(stats.phase_recv_ns),
                           cell(stats.phase_send_ns),
                           cell(stats.phase_checkpoint_ns),
                           cell(stats.phase_idle_ns)});
    }
    std::printf("\nper-device phase breakdown:\n");
    std::fputs(phase_table.str().c_str(), stdout);
  }

  if (!flags.get_string("json").empty()) {
    std::FILE* file = std::fopen(flags.get_string("json").c_str(), "w");
    MGPUSW_REQUIRE(file != nullptr,
                   "cannot open " << flags.get_string("json"));
    std::fputs(core::to_json(result, config.obs.metrics).c_str(), file);
    std::fclose(file);
    std::printf("report: %s\n", flags.get_string("json").c_str());
  }
  if (want_trace) {
    obs::write_chrome_trace(flags.get_string("trace-out"), tracer);
    std::printf("trace : %s (%zu events; open in ui.perfetto.dev)\n",
                flags.get_string("trace-out").c_str(),
                tracer.event_count());
  }
  if (want_metrics) {
    std::FILE* file =
        std::fopen(flags.get_string("metrics-json").c_str(), "w");
    MGPUSW_REQUIRE(file != nullptr,
                   "cannot open " << flags.get_string("metrics-json"));
    std::fputs((metrics.to_json() + "\n").c_str(), file);
    std::fclose(file);
    std::printf("metrics: %s\n", flags.get_string("metrics-json").c_str());
  }

  if (flags.get_bool("modes")) {
    const auto semi = sw::semi_global_score(config.scheme, query, subject);
    const auto overlap = sw::overlap_score(config.scheme, query, subject);
    std::printf("other modes   : global %d, semi-global %d, overlap %d\n",
                sw::global_score(config.scheme, query, subject), semi.score,
                overlap.score);
  }

  if (flags.get_bool("verify")) {
    const sw::ScoreResult oracle =
        sw::linear_score(config.scheme, query, subject);
    const bool ok = config.enable_pruning
                        ? result.best.score == oracle.score
                        : result.best == oracle;
    std::printf("serial cross-check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
