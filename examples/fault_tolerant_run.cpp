// Fault tolerance — kill a device mid-run and recover automatically.
//
// Stage 1 of a chromosome comparison can run for hours; the CUDAlign
// lineage checkpoints "special rows" to disk so a crashed run restarts
// from the last checkpoint instead of from scratch. This example injects
// a deterministic fault (a device death by default, configurable with
// --fault) into a comparison running with disk checkpoints and lets
// core::run_with_recovery handle it: classify the failure, drop the dead
// device, re-split the columns over the survivors, and restart from the
// newest intact checkpoint. The recovered result is bit-identical to an
// unfailed run.
//
//   $ ./fault_tolerant_run --scale=8192
//   $ ./fault_tolerant_run --fault="dev0:die@kernel=100" --tcp
//   $ ./fault_tolerant_run --fault="chan0:drop@chunk=7"
//   $ ./fault_tolerant_run --rebalance --throttle=4
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "mgpusw.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags("Kill a device mid-run and recover automatically");
  flags.add_int("scale", 8192, "divide chr21 lengths by this factor");
  flags.add_int("block_rows", 64, "block height (checkpoint granularity)");
  flags.add_int("interval", 4, "checkpoint every this many block rows");
  flags.add_string("fault", "dev1:die@kernel=40",
                   "fault plan; " + vgpu::fault_plan_grammar());
  flags.add_bool("tcp", false, "use loopback TCP for border traffic");
  flags.add_int("comm_timeout_ms", 2000,
                "TCP read/write timeout (0 = block forever)");
  flags.add_int("max_restarts", 3, "RecoveryPolicy restart budget");
  flags.add_bool("rebalance", false,
                 "re-split columns when measured rates disagree with the "
                 "plan (shares the restart budget)");
  flags.add_int("rebalance-check-rows", 4,
                "evaluate the split every this many completed block rows");
  flags.add_double("rebalance-min-imbalance", 0.5,
                   "projected finish-time spread that triggers a re-split");
  flags.add_int("rebalance-max-resplits", 2,
                "re-splits allowed per comparison");
  flags.add_double("throttle", 1.0,
                   "slow device 1 by this factor mid-run (>1 gives the "
                   "rebalancer something to correct)");
  flags.add_string("trace-out", "",
                   "write a Chrome/Perfetto trace of the faulted run here");
  flags.add_string("metrics-json", "",
                   "write the metrics registry snapshot as JSON here");
  if (!flags.parse(argc, argv)) return 0;

  const auto homologs = seq::make_homolog_pair(
      seq::scaled_pair(seq::paper_chromosome_pairs()[2],
                       flags.get_int("scale")),
      42);

  // The paper's setting: a small heterogeneous pool.
  vgpu::Device d0(vgpu::gtx_580());
  vgpu::Device d1(vgpu::gtx_680());
  vgpu::Device d2(vgpu::gtx_560_ti());
  const std::vector<vgpu::Device*> pool = {&d0, &d1, &d2};

  core::EngineConfig config;
  config.block_rows = flags.get_int("block_rows");
  config.block_cols = 64;
  if (flags.get_bool("tcp")) {
    config.transport = core::Transport::kTcp;
    config.comm_timeout_ms = flags.get_int("comm_timeout_ms");
  }

  // Ground truth: the same comparison with nothing going wrong.
  core::MultiDeviceEngine reference(config, pool);
  const core::EngineResult expected =
      reference.run(homologs.query, homologs.subject);
  std::printf("unfailed run   : score %d at (%lld, %lld) on %zu devices\n",
              expected.best.score,
              static_cast<long long>(expected.best.end.row),
              static_cast<long long>(expected.best.end.col),
              expected.devices.size());

  // The faulted run: checkpoints spill to disk, the injector arms the
  // plan on every device and channel, and recovery does the rest.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mgpusw_ckpt_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  core::SpecialRowStore checkpoints(dir.string());
  config.special_rows = &checkpoints;
  config.special_row_interval = flags.get_int("interval");
  config.checkpoint_f = true;  // rows double as restart checkpoints

  vgpu::FaultInjector injector(
      vgpu::parse_fault_plan(flags.get_string("fault")));
  config.fault = &injector;

  // Dynamic rebalancing: watch the measured per-device cell rates and
  // re-split the remaining columns when they disagree with the plan.
  config.rebalance.enabled = flags.get_bool("rebalance");
  config.rebalance.check_every_rows = flags.get_int("rebalance-check-rows");
  config.rebalance.min_imbalance =
      flags.get_double("rebalance-min-imbalance");
  config.rebalance.max_resplits =
      static_cast<int>(flags.get_int("rebalance-max-resplits"));

  // Optional mid-run throttle: once device 1 finishes its first block
  // row, every later kernel pays the factor — the planner's weights are
  // suddenly wrong, which is exactly what --rebalance corrects. Applied
  // after the first row (not up front) so the calibration-time weights
  // stay honest, like a GPU that starts thermal throttling under load.
  const double throttle = flags.get_double("throttle");
  std::atomic<bool> throttled{false};
  if (throttle > 1.0) {
    config.progress = [&](const core::ProgressEvent& event) {
      if (event.device_index == 1 && event.completed_units >= 1 &&
          !throttled.exchange(true)) {
        d1.set_slowdown(throttle);
      }
    };
  }

  // Observability covers the faulted run only (not the reference run),
  // so the trace shows exactly what recovery did.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const bool want_trace = !flags.get_string("trace-out").empty();
  const bool want_metrics = !flags.get_string("metrics-json").empty();
  if (want_trace) config.obs.tracer = &tracer;
  if (want_trace || want_metrics) config.obs.metrics = &metrics;

  core::RecoveryPolicy policy;
  policy.max_restarts = static_cast<int>(flags.get_int("max_restarts"));

  std::printf("injected fault : %s\n", flags.get_string("fault").c_str());
  int recovered_ok = 1;
  try {
    const core::RecoveryResult recovered = core::run_with_recovery(
        config, pool, homologs.query, homologs.subject, policy);
    std::printf("recovered run  : score %d at (%lld, %lld) on %zu "
                "device(s), %d restart(s), %d rebalance(s)\n",
                recovered.result.best.score,
                static_cast<long long>(recovered.result.best.end.row),
                static_cast<long long>(recovered.result.best.end.col),
                recovered.result.devices.size(), recovered.restarts,
                recovered.rebalances);
    if (!recovered.rebalanced_weights.empty()) {
      std::printf("re-split       :");
      for (double weight : recovered.rebalanced_weights) {
        std::printf(" %.3f", weight);
      }
      std::printf(" (measured-rate column weights)\n");
    }
    for (const std::string& name : recovered.lost_devices) {
      std::printf("lost device    : %s\n", name.c_str());
    }
    std::printf("checkpoints    : %s on disk (%s)\n",
                base::human_bytes(checkpoints.bytes()).c_str(),
                dir.c_str());
    std::printf("verdict        : %s\n",
                recovered.result.best == expected.best
                    ? "bit-identical to the unfailed run"
                    : "MISMATCH (bug!)");
    std::printf("\nJSON report:\n%s",
                core::to_json(recovered, config.obs.metrics).c_str());
    recovered_ok = recovered.result.best == expected.best ? 0 : 1;
  } catch (const core::RecoveryExhaustedError& e) {
    // Structured surrender: the policy ran out of restarts or devices.
    std::printf("recovery gave up after %d restart(s): %s\n", e.restarts(),
                e.what());
  }

  if (want_trace) {
    obs::write_chrome_trace(flags.get_string("trace-out"), tracer);
    std::printf("trace  : %s (%zu events; open in ui.perfetto.dev)\n",
                flags.get_string("trace-out").c_str(),
                tracer.event_count());
  }
  if (want_metrics) {
    std::FILE* file =
        std::fopen(flags.get_string("metrics-json").c_str(), "w");
    MGPUSW_REQUIRE(file != nullptr,
                   "cannot open " << flags.get_string("metrics-json"));
    std::fputs((metrics.to_json() + "\n").c_str(), file);
    std::fclose(file);
    std::printf("metrics: %s\n", flags.get_string("metrics-json").c_str());
  }

  checkpoints.clear();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return recovered_ok;
}
