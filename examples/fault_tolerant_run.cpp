// Fault tolerance — interrupt a megabase comparison and resume it.
//
// Stage 1 of a chromosome comparison can run for hours; the CUDAlign
// lineage checkpoints "special rows" to disk so a crashed run restarts
// from the last checkpoint instead of from scratch. This example runs a
// comparison with disk checkpoints, simulates a crash at roughly the
// midpoint, then resumes from the last checkpoint before the crash and
// shows that the combined result equals the uninterrupted run.
//
//   $ ./fault_tolerant_run --scale=8192
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "mgpusw.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags("Interrupt and resume a comparison");
  flags.add_int("scale", 8192, "divide chr21 lengths by this factor");
  flags.add_int("block_rows", 64, "block height (checkpoint granularity)");
  if (!flags.parse(argc, argv)) return 0;

  const auto homologs = seq::make_homolog_pair(
      seq::scaled_pair(seq::paper_chromosome_pairs()[2],
                       flags.get_int("scale")),
      42);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mgpusw_ckpt_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::printf("checkpoint directory: %s\n", dir.c_str());

  vgpu::Device d0(vgpu::gtx_580());
  vgpu::Device d1(vgpu::gtx_680());

  core::SpecialRowStore checkpoints(dir.string());
  core::EngineConfig config;
  config.block_rows = flags.get_int("block_rows");
  config.block_cols = 64;
  config.special_row_interval = 4;  // checkpoint every 4 block rows
  config.special_rows = &checkpoints;
  config.checkpoint_f = true;  // rows double as restart checkpoints
  core::MultiDeviceEngine engine(config, {&d0, &d1});

  // The "interrupted" run: in reality the process would die mid-flight;
  // here we run it fully to have the ground truth, then pretend we only
  // got as far as the mid-matrix checkpoint.
  const core::EngineResult full = engine.run(homologs.query,
                                             homologs.subject);
  std::printf("uninterrupted run : score %d at (%lld, %lld)\n",
              full.best.score,
              static_cast<long long>(full.best.end.row),
              static_cast<long long>(full.best.end.col));

  const auto rows = checkpoints.rows();
  const std::int64_t crash_row = rows[rows.size() / 2];
  std::printf("simulated crash   : after checkpoint row %lld (%s of %s "
              "checkpointed rows on disk, %s)\n",
              static_cast<long long>(crash_row),
              base::with_thousands(crash_row + 1).c_str(),
              base::with_thousands(homologs.query.size()).c_str(),
              base::human_bytes(checkpoints.bytes()).c_str());

  // What the dying run knew: its best over rows [0, crash_row].
  const auto prefix = sw::linear_score(
      config.scheme, homologs.query.subsequence(0, crash_row + 1),
      homologs.subject);

  // Restart: recompute only the rows after the checkpoint.
  const core::EngineResult resumed =
      engine.resume(homologs.query, homologs.subject, checkpoints,
                    crash_row);
  std::printf("resumed run       : %s cells recomputed (%.0f%% of the "
              "matrix saved)\n",
              base::with_thousands(resumed.matrix_cells).c_str(),
              100.0 * (1.0 - static_cast<double>(resumed.matrix_cells) /
                                 static_cast<double>(full.matrix_cells)));

  sw::ScoreResult combined = prefix;
  if (sw::improves(resumed.best, combined)) combined = resumed.best;
  std::printf("combined result   : score %d at (%lld, %lld) -> %s\n",
              combined.score,
              static_cast<long long>(combined.end.row),
              static_cast<long long>(combined.end.col),
              combined == full.best ? "MATCHES the uninterrupted run"
                                    : "MISMATCH!");

  checkpoints.clear();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return combined == full.best ? 0 : 1;
}
