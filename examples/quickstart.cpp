// Quickstart: compare two synthetic homologous sequences on two virtual
// GPUs and print the optimal local alignment score.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: make sequences,
// make devices, configure the engine, run, read the result.
#include <cstdio>

#include "mgpusw.hpp"

int main() {
  using namespace mgpusw;

  // 1. Sequences: a scaled-down human/chimp chr21 homolog pair.
  const seq::ChromosomePair chr21 = seq::paper_chromosome_pairs()[2];
  const seq::HomologPair pair =
      seq::make_homolog_pair(seq::scaled_pair(chr21, 8192), /*seed=*/42);
  std::printf("query  : %s (%s)\n", pair.query.name().c_str(),
              base::human_bp(pair.query.size()).c_str());
  std::printf("subject: %s (%s)\n", pair.subject.name().c_str(),
              base::human_bp(pair.subject.size()).c_str());

  // 2. Devices: one fast and one slower virtual GPU. The engine sizes
  //    each device's matrix slice proportionally to its speed.
  vgpu::Device fast(vgpu::gtx_680());
  vgpu::Device slow(vgpu::gtx_560_ti());

  // 3. Engine: default configuration (512x512 blocks are too coarse for
  //    this small demo, so shrink them).
  core::EngineConfig config;
  config.block_rows = 128;
  config.block_cols = 128;
  core::MultiDeviceEngine engine(config, {&fast, &slow});

  // 4. Run.
  const core::EngineResult result = engine.run(pair.query, pair.subject);

  std::printf("\noptimal local alignment score: %d\n", result.best.score);
  std::printf("ends at query position %lld, subject position %lld\n",
              static_cast<long long>(result.best.end.row),
              static_cast<long long>(result.best.end.col));
  std::printf("%s cells in %s (%.3f GCUPS on this host)\n",
              base::with_thousands(result.matrix_cells).c_str(),
              base::human_duration(result.wall_seconds).c_str(),
              result.gcups());
  for (const core::DeviceRunStats& device : result.devices) {
    std::printf("  %-12s computed columns [%lld, %lld) — %s cells\n",
                device.device_name.c_str(),
                static_cast<long long>(device.slice.first_col),
                static_cast<long long>(device.slice.end_col()),
                base::with_thousands(device.cells).c_str());
  }

  // 5. Cross-check against the serial oracle (optional, cheap here).
  const sw::ScoreResult oracle =
      sw::linear_score(config.scheme, pair.query, pair.subject);
  std::printf("\nserial oracle agrees: %s\n",
              result.best == oracle ? "yes" : "NO");
  return result.best == oracle ? 0 : 1;
}
