// Cluster planner — size a multi-GPU run before buying the hardware.
//
// Given a set of GPU profiles and a chromosome pair, predicts (with the
// calibrated pipeline model) the paper-scale runtime, GCUPS, the static
// column split, per-device memory needs and the minimum circular-buffer
// capacity — the questions the paper's static balancing answers.
//
//   $ ./cluster_planner --gpus=gtx560ti,gtx580,gtx680 --pair=chr19
//   $ ./cluster_planner --gpus=m2090,m2090 --pair=chr21 --block_rows=1024
#include <cstdio>
#include <sstream>

#include "mgpusw.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags("Plan a multi-GPU megabase comparison");
  flags.add_string("gpus", "gtx560ti,gtx580,gtx680",
                   "comma-separated device names");
  flags.add_string("pair", "chr21", "chromosome pair to plan for");
  flags.add_int("block_rows", 512, "block height");
  flags.add_int("block_cols", 512, "block width");
  flags.add_int("buffer", 64, "circular buffer capacity (chunks)");
  if (!flags.parse(argc, argv)) return 0;

  std::vector<vgpu::DeviceSpec> devices;
  for (const std::string& name : split_csv(flags.get_string("gpus"))) {
    devices.push_back(vgpu::spec_by_name(name));
  }
  MGPUSW_REQUIRE(!devices.empty(), "need at least one GPU name");

  const seq::ChromosomePair* pair = nullptr;
  for (const auto& candidate : seq::paper_chromosome_pairs()) {
    if (candidate.id == flags.get_string("pair")) pair = &candidate;
  }
  MGPUSW_REQUIRE(pair != nullptr,
                 "unknown pair " << flags.get_string("pair"));

  std::printf("planning %s: %s x %s (%s cells)\n\n", pair->id.c_str(),
              base::human_bp(pair->human_length).c_str(),
              base::human_bp(pair->chimp_length).c_str(),
              base::with_thousands(pair->matrix_cells()).c_str());

  // Static split, exactly as the engine would compute it.
  std::vector<double> weights;
  for (const auto& spec : devices) weights.push_back(spec.sw_gcups);
  const auto ranges = core::partition_columns(
      pair->chimp_length, weights, flags.get_int("block_cols"));

  base::TextTable table({"device", "profile GCUPS", "columns", "share",
                         "border memory"});
  for (std::size_t d = 0; d < devices.size(); ++d) {
    // O(m + n_slice) border storage per device (H,E / H,F int32 pairs).
    const std::int64_t border_bytes =
        (pair->human_length + ranges[d].cols) * 2 *
        static_cast<std::int64_t>(sizeof(sw::Score));
    table.add_row({
        devices[d].name,
        base::format_double(devices[d].sw_gcups, 1),
        base::with_thousands(ranges[d].cols),
        base::format_double(100.0 * static_cast<double>(ranges[d].cols) /
                                static_cast<double>(pair->chimp_length),
                            1) + "%",
        base::human_bytes(border_bytes),
    });
  }
  std::fputs(table.str().c_str(), stdout);

  // Predicted end-to-end performance.
  sim::SimConfig config;
  config.rows = pair->human_length;
  config.cols = pair->chimp_length;
  config.block_rows = flags.get_int("block_rows");
  config.block_cols = flags.get_int("block_cols");
  config.buffer_capacity = flags.get_int("buffer");
  config.devices = devices;
  const sim::SimResult prediction = sim::simulate_pipeline(config);

  std::printf("\npredicted runtime : %s\n",
              base::human_duration(prediction.seconds()).c_str());
  std::printf("predicted rate    : %.2f GCUPS (aggregate profile %.2f, "
              "efficiency %.1f%%)\n",
              prediction.gcups(), sim::aggregate_gcups(devices),
              prediction.gcups() / sim::aggregate_gcups(devices) * 100.0);
  std::printf("border traffic    : %s per device pair\n",
              base::human_bytes(pair->human_length *
                                comm::kBorderCellBytes)
                  .c_str());

  // What a single fastest GPU would do, for contrast.
  sim::SimConfig solo = config;
  solo.devices = {devices.front()};
  for (const auto& spec : devices) {
    if (spec.sw_gcups > solo.devices[0].sw_gcups) solo.devices[0] = spec;
  }
  solo.weights.clear();
  const sim::SimResult solo_result = sim::simulate_pipeline(solo);
  std::printf("single fastest GPU: %s (%.2f GCUPS) -> the cluster is "
              "%.2fx faster\n",
              base::human_duration(solo_result.seconds()).c_str(),
              solo_result.gcups(),
              solo_result.seconds() / prediction.seconds());
  return 0;
}
