// mgpusw-client — CLI front end for the alignment service daemon.
//
//   $ ./mgpusw-client submit --port=7421 --tenant=alice --rows=4096
//         --cols=4096 --label=chr21
//   job 1 submitted
//   $ ./mgpusw-client progress --port=7421 1      # live stream
//   $ ./mgpusw-client result --port=7421 1        # waits, prints report
//   $ ./mgpusw-client status --port=7421 1
//   $ ./mgpusw-client cancel --port=7421 1
//   $ ./mgpusw-client metrics --port=7421
//   $ ./mgpusw-client shutdown --port=7421 --drain
//
// With --retries=N the client rides through daemon restarts; pair a
// retried submit with --key=... so the journal-backed daemon dedupes
// the resubmission instead of running the job twice.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/flags.hpp"
#include "base/json.hpp"
#include "serve/client_lib.hpp"

namespace {

using namespace mgpusw;

void print_status(const serve::JobStatus& status) {
  std::printf("job %lld: %s", static_cast<long long>(status.job_id),
              serve::job_state_name(status.state));
  if (!status.label.empty()) std::printf("  label=%s", status.label.c_str());
  if (status.score >= 0) {
    std::printf("  score=%lld", static_cast<long long>(status.score));
  }
  if (status.restarts > 0) std::printf("  restarts=%d", status.restarts);
  if (status.rebalances > 0) {
    std::printf("  rebalances=%d", status.rebalances);
  }
  for (const std::string& name : status.lost_devices) {
    std::printf("  lost=%s", name.c_str());
  }
  if (status.resumed_row >= 0) {
    std::printf("  resumed=%lld", static_cast<long long>(status.resumed_row));
  }
  if (!status.error.empty()) {
    std::printf("  error=\"%s\"", status.error.c_str());
  }
  std::printf("\n");
}

std::int64_t job_id_arg(const base::FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "error: this command needs a job id\n");
    std::exit(2);
  }
  return std::atoll(flags.positional()[1].c_str());
}

}  // namespace

int main(int argc, char** argv) {
  base::FlagSet flags(
      "Client for mgpusw-serve. Commands: submit, status, progress, "
      "result, cancel, metrics, shutdown");
  flags.add_string("host", "127.0.0.1", "daemon host");
  flags.add_int("port", 7421, "daemon port");
  flags.add_int("timeout-ms", 0, "socket timeout (0 = block)");
  flags.add_string("tenant", "default", "tenant the job is billed to");
  flags.add_string("label", "", "job label (defaults to job-<id>)");
  flags.add_int("priority", 0, "scheduling priority (higher runs first)");
  flags.add_string("query", "", "inline query bases (ACGT)");
  flags.add_string("subject", "", "inline subject bases (ACGT)");
  flags.add_int("rows", 0, "synthetic query length");
  flags.add_int("cols", 0, "synthetic subject length");
  flags.add_int("seed", 1, "synthetic generator seed");
  flags.add_string("key", "",
                   "submit: idempotency key (per tenant) — a resubmit "
                   "with the same key returns the original job");
  flags.add_bool("wait", true, "result: wait for the job to finish");
  flags.add_bool("pretty", true, "result/metrics: pretty-print the JSON");
  flags.add_bool("drain", false,
                 "shutdown: let running jobs finish before exiting");
  flags.add_int("retries", 0,
                "reconnect attempts per request after a connection "
                "failure (0 = fail fast)");
  flags.add_int("retry-backoff-ms", 50, "initial reconnect backoff");
  flags.add_int("retry-max-backoff-ms", 2000, "reconnect backoff cap");
  if (!flags.parse(argc, argv)) return 0;
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "error: no command (submit | status | progress | result "
                 "| cancel | metrics | shutdown)\n");
    return 2;
  }
  const std::string command = flags.positional()[0];

  try {
    serve::ReconnectPolicy policy;
    policy.max_attempts = static_cast<int>(flags.get_int("retries"));
    policy.initial_backoff_ms = flags.get_int("retry-backoff-ms");
    policy.max_backoff_ms = flags.get_int("retry-max-backoff-ms");
    serve::ServeClient client = serve::ServeClient::connect(
        flags.get_string("host"),
        static_cast<std::uint16_t>(flags.get_int("port")),
        flags.get_int("timeout-ms"), policy);

    if (command == "submit") {
      serve::SubmitRequest request;
      request.tenant = flags.get_string("tenant");
      request.label = flags.get_string("label");
      request.priority = static_cast<int>(flags.get_int("priority"));
      request.query = flags.get_string("query");
      request.subject = flags.get_string("subject");
      request.rows = flags.get_int("rows");
      request.cols = flags.get_int("cols");
      request.seed = flags.get_int("seed");
      request.idempotency_key = flags.get_string("key");
      const std::int64_t job_id = client.submit(request);
      std::printf("job %lld submitted\n", static_cast<long long>(job_id));
    } else if (command == "status") {
      print_status(client.status(job_id_arg(flags)));
    } else if (command == "progress") {
      const serve::JobStatus final_status = client.stream_progress(
          job_id_arg(flags), [](const serve::ProgressUpdate& update) {
            std::fprintf(stderr, "\rjob %lld: %lld/%lld units",
                         static_cast<long long>(update.job_id),
                         static_cast<long long>(update.completed_units),
                         static_cast<long long>(update.total_units));
          });
      std::fprintf(stderr, "\n");
      print_status(final_status);
    } else if (command == "result") {
      const serve::JobStatus status =
          client.result(job_id_arg(flags), flags.get_bool("wait"));
      print_status(status);
      if (!status.result_json.empty()) {
        // Round-trip through base::json for the pretty layout.
        const std::string report =
            flags.get_bool("pretty")
                ? base::json::dump(base::json::parse(status.result_json),
                                   base::JsonWriter::kPretty)
                : status.result_json;
        std::printf("%s\n", report.c_str());
      }
    } else if (command == "cancel") {
      print_status(client.cancel(job_id_arg(flags)));
    } else if (command == "metrics") {
      const std::string snapshot = client.metrics_json();
      const std::string report =
          flags.get_bool("pretty")
              ? base::json::dump(base::json::parse(snapshot),
                                 base::JsonWriter::kPretty)
              : snapshot;
      std::printf("%s\n", report.c_str());
    } else if (command == "shutdown") {
      client.shutdown_server(flags.get_bool("drain"));
      std::printf("server shutting down%s\n",
                  flags.get_bool("drain") ? " (draining)" : "");
    } else {
      std::fprintf(stderr, "error: unknown command \"%s\"\n",
                   command.c_str());
      return 2;
    }
  } catch (const serve::ServeError& e) {
    std::fprintf(stderr, "server error [%s]: %s\n", e.code().c_str(),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
