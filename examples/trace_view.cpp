// Trace summarizer — a quick look at a --trace-out artifact without
// leaving the terminal.
//
// Reads a Chrome/Perfetto trace written by chromosome_compare,
// batch_compare or fault_tolerant_run (--trace-out=FILE) and prints,
// per thread track, the time spent in each span type plus counts of
// instant events — the textual cousin of the Perfetto timeline. Parses
// with the repo's own base::json, so it doubles as an end-to-end check
// that the exported artifact is well-formed.
//
//   $ ./chromosome_compare --devices=2 --trace-out=trace.json
//   $ ./trace_view trace.json
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "mgpusw.hpp"

namespace {

using namespace mgpusw;

struct SpanStats {
  std::int64_t count = 0;
  double total_us = 0.0;
};

struct TrackSummary {
  std::string name;                          // thread_name metadata
  std::map<std::string, SpanStats> spans;    // "cat/name" -> stats
  std::map<std::string, std::int64_t> instants;
  double first_ts_us = -1.0;
  double last_end_us = 0.0;
};

/// Span key: "engine/block" — category plus name, the pair the exporter
/// emits. Counter series collapse per name (their per-sample args vary).
std::string span_key(const base::json::Value& event) {
  const base::json::Value* cat = event.find("cat");
  const base::json::Value* name = event.find("name");
  return (cat != nullptr && cat->is_string() ? cat->string : "?") + "/" +
         (name != nullptr && name->is_string() ? name->string : "?");
}

}  // namespace

int main(int argc, char** argv) {
  base::FlagSet flags("Summarize a Chrome/Perfetto trace on the terminal");
  flags.add_int("top", 10, "span types listed per track");
  if (!flags.parse(argc, argv)) return 0;
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_view [--top=N] <trace.json>\n");
    return 1;
  }
  const std::string& path = flags.positional()[0];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  base::json::Value doc;
  try {
    doc = base::json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: not valid JSON: %s\n", path.c_str(), e.what());
    return 1;
  }
  const base::json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no traceEvents array — not a Chrome trace\n",
                 path.c_str());
    return 1;
  }

  std::map<std::int64_t, TrackSummary> tracks;
  std::int64_t complete = 0;
  std::int64_t instants = 0;
  std::int64_t counters = 0;
  for (const base::json::Value& event : events->array) {
    const base::json::Value* ph = event.find("ph");
    const base::json::Value* tid = event.find("tid");
    if (ph == nullptr || !ph->is_string() || tid == nullptr) continue;
    TrackSummary& track = tracks[tid->as_int()];
    if (ph->string == "M") {
      const base::json::Value* args = event.find("args");
      const base::json::Value* name =
          args != nullptr ? args->find("name") : nullptr;
      if (name != nullptr && name->is_string()) track.name = name->string;
      continue;
    }
    const base::json::Value* ts = event.find("ts");
    const double start_us =
        ts != nullptr && ts->is_number() ? ts->number : 0.0;
    if (track.first_ts_us < 0.0 || start_us < track.first_ts_us) {
      track.first_ts_us = start_us;
    }
    if (ph->string == "X") {
      ++complete;
      const base::json::Value* dur = event.find("dur");
      const double dur_us =
          dur != nullptr && dur->is_number() ? dur->number : 0.0;
      SpanStats& stats = track.spans[span_key(event)];
      ++stats.count;
      stats.total_us += dur_us;
      track.last_end_us = std::max(track.last_end_us, start_us + dur_us);
    } else if (ph->string == "i") {
      ++instants;
      ++track.instants[span_key(event)];
      track.last_end_us = std::max(track.last_end_us, start_us);
    } else if (ph->string == "C") {
      ++counters;
      track.last_end_us = std::max(track.last_end_us, start_us);
    }
  }

  std::printf("%s: %zu events (%lld spans, %lld instants, %lld counter "
              "samples) on %zu tracks\n\n",
              path.c_str(), events->array.size(),
              static_cast<long long>(complete),
              static_cast<long long>(instants),
              static_cast<long long>(counters), tracks.size());

  const auto top = static_cast<std::size_t>(flags.get_int("top"));
  for (const auto& [tid, track] : tracks) {
    const double active_us =
        track.first_ts_us < 0.0 ? 0.0
                                : track.last_end_us - track.first_ts_us;
    std::printf("track %lld%s%s  (active %s)\n",
                static_cast<long long>(tid),
                track.name.empty() ? "" : "  ",
                track.name.c_str(),
                base::human_duration(active_us * 1e-6).c_str());
    // Largest total time first; ties break on the key for determinism.
    std::vector<std::pair<std::string, SpanStats>> ordered(
        track.spans.begin(), track.spans.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                if (a.second.total_us != b.second.total_us) {
                  return a.second.total_us > b.second.total_us;
                }
                return a.first < b.first;
              });
    if (ordered.size() > top) ordered.resize(top);
    base::TextTable table({"span", "count", "total", "share"});
    for (const auto& [key, stats] : ordered) {
      table.add_row(
          {key, base::with_thousands(stats.count),
           base::human_duration(stats.total_us * 1e-6),
           active_us > 0.0
               ? base::format_double(stats.total_us / active_us * 100.0,
                                     1) +
                     "%"
               : "-"});
    }
    std::fputs(table.str().c_str(), stdout);
    for (const auto& [key, count] : track.instants) {
      std::printf("  instant %s x%lld\n", key.c_str(),
                  static_cast<long long>(count));
    }
    std::printf("\n");
  }
  return 0;
}
